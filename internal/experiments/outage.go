package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/population"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
)

// OutageSweep quantifies the §6.1 resilience argument ("longer caching is
// more robust to DDoS attacks") the way Moura et al. [36] did: sweep the
// record TTL, degrade the authoritative path for a fixed window, and measure
// how many client queries still get answers. Caching rides out any outage
// shorter than the TTL; serve-stale extends that to arbitrary outages.
//
// Two outage regimes are swept. The *full* outage knocks every relevant
// authoritative hard-down (the naive model). The *partial* outage is the
// realistic shape Moura et al. observed during the root DDoS events: servers
// stay up but shed most packets and answer slowly — which is exactly the
// regime where a resolver's retry plane (Policy.Retry) matters, because a
// second or third attempt has an independent chance of getting through.
//
// The TTL × policy grid is fanned across workers (see Sweep); each cell
// builds its own seeded testbed and fault schedule, so the report is
// identical at any worker count.
func OutageSweep(probes, workers int, seed int64) *Report {
	ttls := []uint32{60, 600, 1800, 3600, 7200}
	const (
		rounds       = 12 // 2 h of probing at 600 s
		outageStart  = 3  // outage begins at t=30 min
		outageLength = 6  // ... and lasts 1 h (rounds 3-8)
		interval     = 600 * time.Second
		// Partial-outage shape: servers drop ~70 % of packets and answer
		// 3× slower, per the root-DDoS measurements.
		partialLoss   = 0.7
		partialFactor = 3
	)

	// One sweep cell: a TTL crossed with an outage regime and a resolver
	// policy. partial selects the loss-burst fault schedule over the
	// hard-down window; retry arms the retry plane; stale arms RFC 8767.
	type cell struct {
		ttl                   uint32
		partial, retry, stale bool
	}
	var cells []cell
	for _, ttl := range ttls {
		cells = append(cells,
			cell{ttl: ttl},                                          // full outage, strict TTL
			cell{ttl: ttl, stale: true},                             // full outage, serve-stale
			cell{ttl: ttl, partial: true},                           // partial outage, legacy resolver
			cell{ttl: ttl, partial: true, retry: true},              // partial outage, retry plane
			cell{ttl: ttl, partial: true, retry: true, stale: true}, // retry + serve-stale
		)
	}

	run := func(c cell) float64 {
		tb := NewTestbed(seed)
		if !tb.Ct.SetTTL(dnswire.NewName("www.cachetest.net"), dnswire.TypeA, c.ttl) {
			panic("missing record")
		}
		pol := resolver.DefaultPolicy()
		pol.ServeStale = c.stale
		if c.retry {
			pol.Retry = resolver.RetryPolicy{
				Attempts:    4,
				Backoff:     200 * time.Millisecond,
				Jitter:      0.5,
				OrderBySRTT: true,
			}
		}
		if c.partial {
			fs := simnet.NewFaultSchedule()
			fs.Seed = seed
			start := outageStart * interval
			length := outageLength * interval
			fs.Add(
				simnet.LossBurst(tb.RootAddr, start, length, partialLoss),
				simnet.LatencySpike(tb.RootAddr, start, length, partialFactor),
				simnet.LossBurst(tb.NetAddr, start, length, partialLoss),
				simnet.LatencySpike(tb.NetAddr, start, length, partialFactor),
				simnet.LossBurst(tb.CtAddr, start, length, partialLoss),
				simnet.LatencySpike(tb.CtAddr, start, length, partialFactor),
			)
			tb.Net.Faults = fs
		}
		mix := population.Mix{{Name: "bind-like", Weight: 1, Policy: pol}}
		fleet := tb.Fleet(probes, mix, seed)
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("www.cachetest.net"), Type: dnswire.TypeA,
			Interval: interval, Rounds: rounds, Jitter: true,
			OnRound: func(r int) {
				if c.partial {
					return // the fault schedule scripts the window
				}
				switch r {
				case outageStart:
					_ = tb.Net.SetDown(tb.RootAddr, true)
					_ = tb.Net.SetDown(tb.NetAddr, true)
					_ = tb.Net.SetDown(tb.CtAddr, true)
				case outageStart + outageLength:
					_ = tb.Net.SetDown(tb.RootAddr, false)
					_ = tb.Net.SetDown(tb.NetAddr, false)
					_ = tb.Net.SetDown(tb.CtAddr, false)
				}
			},
		})
		valid, total := 0, 0
		for _, r := range resps {
			if r.Round < outageStart || r.Round >= outageStart+outageLength {
				continue
			}
			total++
			if r.Valid() {
				valid++
			}
		}
		return frac(valid, total)
	}

	avail := Sweep(len(cells), workers, func(i int) float64 {
		return run(cells[i])
	})

	const perTTL = 5
	tbl := &stats.Table{
		Title: "Availability during a 1-hour outage, by record TTL",
		Header: []string{"TTL (s)", "full/strict", "full/stale",
			"partial/strict", "partial/retry", "partial/retry+stale"},
	}
	m := map[string]float64{}
	for i, ttl := range ttls {
		strict := avail[perTTL*i]
		stale := avail[perTTL*i+1]
		partial := avail[perTTL*i+2]
		retry := avail[perTTL*i+3]
		retryStale := avail[perTTL*i+4]
		tbl.AddRow(fmt.Sprintf("%d", ttl),
			fmt.Sprintf("%.0f%%", 100*strict), fmt.Sprintf("%.0f%%", 100*stale),
			fmt.Sprintf("%.0f%%", 100*partial), fmt.Sprintf("%.0f%%", 100*retry),
			fmt.Sprintf("%.0f%%", 100*retryStale))
		m[fmt.Sprintf("avail_ttl_%d", ttl)] = strict
		m[fmt.Sprintf("avail_stale_ttl_%d", ttl)] = stale
		m[fmt.Sprintf("avail_partial_ttl_%d", ttl)] = partial
		m[fmt.Sprintf("avail_partial_retry_ttl_%d", ttl)] = retry
		m[fmt.Sprintf("avail_partial_retry_stale_ttl_%d", ttl)] = retryStale
	}
	return &Report{
		ID:      "§6.1 outage sweep",
		Title:   "TTLs longer than the attack keep names resolvable; retries and serve-stale cover the rest",
		Text:    tbl.String(),
		Metrics: m,
	}
}
