package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/population"
	"dnsttl/internal/resolver"
	"dnsttl/internal/stats"
)

// OutageSweep quantifies the §6.1 resilience argument ("longer caching is
// more robust to DDoS attacks") the way Moura et al. [36] did: sweep the
// record TTL, knock every authoritative out for a fixed window, and measure
// how many client queries still get answers. Caching rides out any outage
// shorter than the TTL; serve-stale extends that to arbitrary outages.
//
// The TTL × policy grid is fanned across workers (see Sweep); each cell
// builds its own seeded testbed, so the report is identical at any worker
// count.
func OutageSweep(probes, workers int, seed int64) *Report {
	ttls := []uint32{60, 600, 1800, 3600, 7200}
	const (
		rounds       = 12 // 2 h of probing at 600 s
		outageStart  = 3  // outage begins at t=30 min
		outageLength = 6  // ... and lasts 1 h (rounds 3-8)
		interval     = 600 * time.Second
	)

	run := func(ttl uint32, serveStale bool) float64 {
		tb := NewTestbed(seed)
		if !tb.Ct.SetTTL(dnswire.NewName("www.cachetest.net"), dnswire.TypeA, ttl) {
			panic("missing record")
		}
		pol := resolver.DefaultPolicy()
		pol.ServeStale = serveStale
		mix := population.Mix{{Name: "bind-like", Weight: 1, Policy: pol}}
		fleet := tb.Fleet(probes, mix, seed)
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("www.cachetest.net"), Type: dnswire.TypeA,
			Interval: interval, Rounds: rounds, Jitter: true,
			OnRound: func(r int) {
				switch r {
				case outageStart:
					_ = tb.Net.SetDown(tb.RootAddr, true)
					_ = tb.Net.SetDown(tb.NetAddr, true)
					_ = tb.Net.SetDown(tb.CtAddr, true)
				case outageStart + outageLength:
					_ = tb.Net.SetDown(tb.RootAddr, false)
					_ = tb.Net.SetDown(tb.NetAddr, false)
					_ = tb.Net.SetDown(tb.CtAddr, false)
				}
			},
		})
		valid, total := 0, 0
		for _, r := range resps {
			if r.Round < outageStart || r.Round >= outageStart+outageLength {
				continue
			}
			total++
			if r.Valid() {
				valid++
			}
		}
		return frac(valid, total)
	}

	// Flatten the (ttl, serve-stale) grid into independent sweep cells:
	// even index = strict, odd = serve-stale.
	avail := Sweep(2*len(ttls), workers, func(i int) float64 {
		return run(ttls[i/2], i%2 == 1)
	})

	tbl := &stats.Table{
		Title:  "Availability during a 1-hour full outage, by record TTL",
		Header: []string{"TTL (s)", "strict TTL", "with serve-stale"},
	}
	m := map[string]float64{}
	for i, ttl := range ttls {
		strict, stale := avail[2*i], avail[2*i+1]
		tbl.AddRow(fmt.Sprintf("%d", ttl),
			fmt.Sprintf("%.0f%%", 100*strict), fmt.Sprintf("%.0f%%", 100*stale))
		m[fmt.Sprintf("avail_ttl_%d", ttl)] = strict
		m[fmt.Sprintf("avail_stale_ttl_%d", ttl)] = stale
	}
	return &Report{
		ID:      "§6.1 outage sweep",
		Title:   "TTLs longer than the attack keep names resolvable; serve-stale covers the rest",
		Text:    tbl.String(),
		Metrics: m,
	}
}
