package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnssec"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/population"
	"dnsttl/internal/stats"
)

// ValidationCentricity quantifies the §6.3 recommendation: "DNSSEC
// verification requires evaluation of queries from the child zone". The
// same population mix probes a signed .uy-style zone twice — once as-is,
// once with every resolver validating — and the parent-TTL share collapses.
func ValidationCentricity(probes int, seed int64) *Report {
	run := func(validate bool) (fChild, fParent float64, validated int) {
		tb := NewTestbed(seed)
		key := dnssec.NewKey(dnswire.NewName("uy"), seed)
		if _, err := dnssec.SignZone(tb.Uy, key, tb.Clock.Now()); err != nil {
			panic(err)
		}
		mix := population.DefaultMix()
		if validate {
			for i := range mix {
				mix[i].Policy.Validate = true
			}
		}
		fleet := tb.Fleet(probes, mix, seed)
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("uy"), Type: dnswire.TypeNS,
			Interval: 600 * time.Second, Rounds: 6, Jitter: true,
		})
		child, parent, valid := 0, 0, 0
		for _, r := range resps {
			if !r.Valid() || r.TTL == 0 {
				continue
			}
			valid++
			if r.TTL <= 300 {
				child++
			} else {
				parent++
			}
		}
		return frac(child, valid), frac(parent, valid), valid
	}

	cPlain, pPlain, _ := run(false)
	cVal, pVal, _ := run(true)

	tbl := &stats.Table{Title: "DNSSEC validation and centricity (.uy NS, child 300 s vs parent 172800 s)",
		Header: []string{"population", "child-TTL answers", "parent-TTL answers"}}
	tbl.AddRow("measured mix", fmt.Sprintf("%.1f%%", 100*cPlain), fmt.Sprintf("%.1f%%", 100*pPlain))
	tbl.AddRow("same mix, all validating", fmt.Sprintf("%.1f%%", 100*cVal), fmt.Sprintf("%.1f%%", 100*pVal))

	return &Report{
		ID:    "§6.3 validation",
		Title: "Validating resolvers are structurally child-centric",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"frac_child_plain":       cPlain,
			"frac_parent_plain":      pPlain,
			"frac_child_validating":  cVal,
			"frac_parent_validating": pVal,
		},
	}
}
