package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// ttlCampaign is one column of Table 10.
type ttlCampaign struct {
	Label    string
	Name     dnswire.Name
	PerProbe bool
}

// table10Campaigns in the paper's column order.
var table10Campaigns = []ttlCampaign{
	{"TTL60-u", dnswire.NewName("PROBEID.u60.mapache-de-madrid.co"), true},
	{"TTL86400-u", dnswire.NewName("PROBEID.u86400.mapache-de-madrid.co"), true},
	{"TTL60-s", dnswire.NewName("1.mapache-de-madrid.co"), false},
	{"TTL86400-s", dnswire.NewName("2.mapache-de-madrid.co"), false},
	{"TTL60-s-anycast", dnswire.NewName("4.mapache-any.co"), false},
}

// ttlCampaignResult captures one campaign's client- and authoritative-side
// view.
type ttlCampaignResult struct {
	Label       string
	VPs         int
	Client      *stats.Sample // RTT in ms
	ValidResps  int
	AuthQueries uint64
}

// runTTLCampaign probes one test name from a fresh fleet, counting queries
// arriving at the controlled domain's authoritative.
func runTTLCampaign(c ttlCampaign, probes int, seed int64) ttlCampaignResult {
	tb := NewTestbed(seed)
	srv := tb.Servers[tb.MapacheAddr]
	fleet := tb.Fleet(probes, nil, seed)

	// Warm the delegation chain with a throwaway name in the same zone so
	// the authoritative count reflects the test name itself, not
	// first-contact infrastructure walks — the paper's VPs had long since
	// cached the .co path.
	warmName := dnswire.NewName("warmup.mapache-de-madrid.co")
	if c.Name.IsSubdomainOf(dnswire.NewName("mapache-any.co")) {
		warmName = dnswire.NewName("warmup.mapache-any.co")
	}
	fleet.Run(tb.Clock, atlas.Schedule{
		Name: warmName, Type: dnswire.TypeAAAA,
		Interval: time.Second, Rounds: 1,
	})
	tb.Clock.Advance(2 * time.Minute)
	srv.ResetQueryLog()

	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name: c.Name, Type: dnswire.TypeAAAA,
		Interval: 600 * time.Second, Rounds: 6,
		PerProbe: c.PerProbe, Jitter: true,
	})
	out := ttlCampaignResult{Label: c.Label, VPs: len(fleet.VPs), Client: stats.NewSample()}
	for _, r := range resps {
		if !r.Valid() {
			continue
		}
		out.ValidResps++
		out.Client.AddDuration(r.RTT)
	}
	out.AuthQueries = srv.QueryCount()
	return out
}

// Table10Figure11 runs the five §6.2 campaigns and reports the query-volume
// table and the latency CDFs.
func Table10Figure11(probes int, seed int64) *Report {
	results := make([]ttlCampaignResult, 0, len(table10Campaigns))
	for i, c := range table10Campaigns {
		results = append(results, runTTLCampaign(c, probes, seed+int64(i)))
	}

	tbl := &stats.Table{Title: "Table 10: controlled TTL experiments",
		Header: []string{"", "TTL60-u", "TTL86400-u", "TTL60-s", "TTL86400-s", "TTL60-s-anycast"}}
	row := func(name string, f func(ttlCampaignResult) string) {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, f(r))
		}
		tbl.AddRow(cells...)
	}
	row("VPs", func(r ttlCampaignResult) string { return stats.FormatCount(r.VPs) })
	row("responses (valid)", func(r ttlCampaignResult) string { return stats.FormatCount(r.ValidResps) })
	row("auth queries", func(r ttlCampaignResult) string { return stats.FormatCount(int(r.AuthQueries)) })
	row("median RTT (ms)", func(r ttlCampaignResult) string { return fmt.Sprintf("%.2f", r.Client.Median()) })
	row("p75 RTT (ms)", func(r ttlCampaignResult) string { return fmt.Sprintf("%.2f", r.Client.Quantile(0.75)) })
	row("p95 RTT (ms)", func(r ttlCampaignResult) string { return fmt.Sprintf("%.2f", r.Client.Quantile(0.95)) })

	byLabel := map[string]ttlCampaignResult{}
	for _, r := range results {
		byLabel[r.Label] = r
	}
	fig11a := stats.RenderCDF("Figure 11a: client RTT, unique query names",
		"RTT (ms)", map[string]*stats.Sample{
			"TTL60-u":    byLabel["TTL60-u"].Client,
			"TTL86400-u": byLabel["TTL86400-u"].Client,
		}, 64, true)
	fig11b := stats.RenderCDF("Figure 11b: client RTT, shared query names",
		"RTT (ms)", map[string]*stats.Sample{
			"TTL60-s":         byLabel["TTL60-s"].Client,
			"TTL86400-s":      byLabel["TTL86400-s"].Client,
			"TTL60-s-anycast": byLabel["TTL60-s-anycast"].Client,
		}, 64, true)

	m := map[string]float64{}
	for _, r := range results {
		m["median_ms_"+r.Label] = r.Client.Median()
		m["p75_ms_"+r.Label] = r.Client.Quantile(0.75)
		m["p95_ms_"+r.Label] = r.Client.Quantile(0.95)
		m["auth_queries_"+r.Label] = float64(r.AuthQueries)
	}
	m["load_reduction_unique"] = 1 - m["auth_queries_TTL86400-u"]/m["auth_queries_TTL60-u"]
	m["load_reduction_shared"] = 1 - m["auth_queries_TTL86400-s"]/m["auth_queries_TTL60-s"]

	rep := &Report{
		ID:      "Table 10 / Figure 11",
		Title:   "Longer TTLs cut authoritative load and beat anycast at the median",
		Text:    tbl.String() + "\n" + fig11a + "\n" + fig11b,
		Metrics: m,
	}
	for _, r := range results {
		rep.AddSeries("rtt_ms_"+r.Label, r.Client)
	}
	return rep
}
