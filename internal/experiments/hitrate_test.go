package experiments

import (
	"math"
	"testing"
)

func TestHitRateVsTTL(t *testing.T) {
	r := HitRateVsTTL(6000, 0, 31)
	// Monotone in TTL.
	prev := -1.0
	for _, ttl := range []int{10, 60, 1000, 86400} {
		h := r.Metric(intKey("hit_rate_ttl_", ttl))
		if h < prev {
			t.Fatalf("hit rate decreased at TTL %d: %v < %v", ttl, h, prev)
		}
		prev = h
	}
	// Measured matches the analytical model within a few points.
	for _, ttl := range []int{60, 300, 1000, 3600} {
		got := r.Metric(intKey("hit_rate_ttl_", ttl))
		want := r.Metric(intKey("model_ttl_", ttl))
		if math.Abs(got-want) > 0.08 {
			t.Errorf("TTL %d: measured %.3f vs model %.3f", ttl, got, want)
		}
	}
	// The Jung et al. observation: 1000 s captures most of the benefit.
	if ratio := r.Metric("hit_rate_1000_over_86400"); ratio < 0.75 {
		t.Errorf("hit rate at 1000s / 86400s = %.3f, want ≥0.75", ratio)
	}
}

func intKey(prefix string, v int) string {
	return prefix + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
