package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const (
	pressureTestQueries = 4000
	pressureTestSeed    = 44
)

func pressureGoldenPath() string {
	return filepath.Join("testdata", "pressure_golden.json")
}

// TestPressureGolden replays the cache-pressure grid and compares the full
// per-cell outcome — hits, evictions, admission rejects, prefetches,
// authoritative queries, resident bytes — byte for byte against the golden.
// Any drift in byte accounting, eviction order, admission, or refresh-ahead
// semantics fails here first. Regenerate with -update.
func TestPressureGolden(t *testing.T) {
	got := PressureRun(pressureTestQueries, 0, pressureTestSeed).JSON()
	if *update {
		if err := os.WriteFile(pressureGoldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", pressureGoldenPath(), len(got))
		return
	}
	want, err := os.ReadFile(pressureGoldenPath())
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("pressure sweep drifted from golden %s.\nRegenerate with -update if the change is intentional.\ngot:\n%s", pressureGoldenPath(), got)
	}
}

// TestPressureDeterministic proves the sweep is identical at any worker
// count: each cell owns its world, so fan-out order cannot leak into
// results.
func TestPressureDeterministic(t *testing.T) {
	serial := PressureRun(1000, 1, pressureTestSeed).JSON()
	fanned := PressureRun(1000, 8, pressureTestSeed).JSON()
	if !bytes.Equal(serial, fanned) {
		t.Error("pressure sweep differs between 1 and 8 workers")
	}
}

// TestPressureOutcomes pins the semantic shape the golden bytes must tell:
// recency-aware eviction beats FIFO at every grid cell, refresh-ahead lifts
// the short-TTL hit rate (paying in authoritative queries), and the byte
// bound holds everywhere.
func TestPressureOutcomes(t *testing.T) {
	rep := PressureRun(pressureTestQueries, 0, pressureTestSeed)
	for _, c := range rep.Cells {
		t.Logf("%-5s %3dKB ttl=%3d pf=%-5v hit‰=%3d evict=%5d adrej=%5d pf=%4d authq=%5d bytes=%6d entries=%4d",
			c.Policy, c.MaxKB, c.TTL, c.Prefetch, c.HitPerMille, c.Evictions,
			c.AdmissionRejects, c.Prefetches, c.AuthQueries, c.FinalBytes, c.FinalEntries)
	}

	admissionFired := false
	for _, size := range pressureSizes {
		kb := int(size >> 10)
		for _, ttl := range pressureTTLs {
			fifo := rep.Cell("fifo", kb, int(ttl), false)
			lru := rep.Cell("lru", kb, int(ttl), false)
			slru := rep.Cell("slru", kb, int(ttl), false)
			if fifo == nil || lru == nil || slru == nil {
				t.Fatalf("missing cells at %dKB ttl=%d", kb, ttl)
			}
			if lru.HitPerMille < fifo.HitPerMille {
				t.Errorf("%dKB ttl=%d: LRU hit rate %d‰ below FIFO %d‰",
					kb, ttl, lru.HitPerMille, fifo.HitPerMille)
			}
			if slru.AdmissionRejects > 0 {
				admissionFired = true
			}
		}

		// SLRU/TinyLFU is built for the retention-dominated regime: at the
		// long-TTL cells it must beat both FIFO and plain LRU. (Under heavy
		// expiry churn its admission filter costs misses instead — a real
		// TinyLFU property the golden records rather than hides.)
		slru := rep.Cell("slru", kb, 300, false)
		fifo := rep.Cell("fifo", kb, 300, false)
		lru := rep.Cell("lru", kb, 300, false)
		if slru.HitPerMille < fifo.HitPerMille || slru.HitPerMille < lru.HitPerMille {
			t.Errorf("%dKB ttl=300: SLRU %d‰ should lead FIFO %d‰ and LRU %d‰",
				kb, slru.HitPerMille, fifo.HitPerMille, lru.HitPerMille)
		}

		// Refresh-ahead at the short-TTL cell: more hits, more upstream
		// queries — the explicit trade.
		plain := rep.Cell("lru", kb, int(pressurePrefetchTTL), false)
		pf := rep.Cell("lru", kb, int(pressurePrefetchTTL), true)
		if plain == nil || pf == nil {
			t.Fatalf("missing prefetch cells at %dKB", kb)
		}
		if pf.HitPerMille <= plain.HitPerMille {
			t.Errorf("%dKB: prefetch did not lift hit rate: %d‰ vs %d‰",
				kb, pf.HitPerMille, plain.HitPerMille)
		}
		if pf.Prefetches == 0 {
			t.Errorf("%dKB: prefetch row issued no prefetches", kb)
		}
		if pf.AuthQueries <= plain.AuthQueries {
			t.Errorf("%dKB: prefetch should cost authoritative queries: %d vs %d",
				kb, pf.AuthQueries, plain.AuthQueries)
		}
	}

	if !admissionFired {
		t.Error("SLRU admission filter never fired anywhere in the grid")
	}

	// The byte bound is never exceeded, and every pressured cell evicted.
	for _, c := range rep.Cells {
		if c.FinalBytes > c.MaxKB<<10 {
			t.Errorf("%s %dKB ttl=%d: resident bytes %d exceed bound %d",
				c.Policy, c.MaxKB, c.TTL, c.FinalBytes, c.MaxKB<<10)
		}
		if c.Evictions == 0 && c.Policy != "slru" {
			t.Errorf("%s %dKB ttl=%d: no evictions — grid not under pressure",
				c.Policy, c.MaxKB, c.TTL)
		}
	}
}
