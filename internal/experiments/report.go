// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver builds its testbed (zones, servers,
// vantage-point fleet), runs the measurement on virtual time, and returns a
// Report with the rendered table/figure plus named metrics that
// EXPERIMENTS.md and the benchmarks compare against the paper's values.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dnsttl/internal/obs"
	"dnsttl/internal/stats"
)

// Report is one experiment's output.
type Report struct {
	// ID names the paper artifact ("Table 1", "Figure 10a", ...).
	ID string
	// Title is a one-line description.
	Title string
	// Text is the rendered table or figure.
	Text string
	// Metrics are named scalar results, keyed like "median_ms_before".
	Metrics map[string]float64
	// Series holds the figure experiments' raw CDF data for external
	// plotting (WriteCSV / ttlrepro -csvdir). Keys name the lines.
	Series map[string][]stats.CDFPoint
}

// AddSeries attaches a sample's CDF under the given line name.
func (r *Report) AddSeries(name string, s *stats.Sample) {
	if s == nil || s.Len() == 0 {
		return
	}
	if r.Series == nil {
		r.Series = make(map[string][]stats.CDFPoint)
	}
	r.Series[name] = s.CDF()
}

// WriteCSV emits the report's series as CSV rows (series,x,F) suitable for
// any plotting tool. It writes nothing when the report has no series.
func (r *Report) WriteCSV(w io.Writer) error {
	if len(r.Series) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.Series))
	for n := range r.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "series,x,cum_fraction"); err != nil {
		return err
	}
	for _, n := range names {
		for _, p := range r.Series[n] {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", n, p.X, p.F); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddHistograms copies every histogram in the registry into the report's
// metrics as <prefix><name>.{count,p50,p90,p99}, so experiment output and a
// live /metrics scrape of the same run agree by construction. Registered
// names are walked in sorted order; a nil registry adds nothing.
func (r *Report) AddHistograms(reg *obs.Registry, prefix string) {
	snap := reg.Snapshot()
	if len(snap.Histograms) == 0 {
		return
	}
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	for _, name := range reg.HistogramNames() {
		h := snap.Histograms[name]
		r.Metrics[prefix+name+".count"] = float64(h.Count)
		r.Metrics[prefix+name+".p50"] = h.P50
		r.Metrics[prefix+name+".p90"] = h.P90
		r.Metrics[prefix+name+".p99"] = h.P99
	}
}

// Metric fetches a named metric (NaN-safe zero when missing).
func (r *Report) Metric(name string) float64 {
	return r.Metrics[name]
}

// MarshalJSON emits the report in a machine-readable form for downstream
// plotting: id, title, metrics, and the rendered text.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Metrics map[string]float64 `json:"metrics"`
		Text    string             `json:"text"`
	}{r.ID, r.Title, r.Metrics, r.Text})
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-36s %12.3f\n", k, r.Metrics[k])
		}
	}
	return b.String()
}
