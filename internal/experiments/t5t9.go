package experiments

import (
	"fmt"

	"dnsttl/internal/crawler"
	"dnsttl/internal/dmap"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
	"dnsttl/internal/zonegen"
)

// CrawlWorld builds the synthetic Internet and crawls all five lists once;
// the result feeds Tables 5, 8 and 9 and Figure 9.
func CrawlWorld(scale float64, seed int64) (*zonegen.World, map[zonegen.List]*crawler.Result) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(seed)
	w := zonegen.Build(zonegen.Config{Seed: seed, Scale: scale}, net, clock)
	return w, crawler.New(w).CrawlAll()
}

// listOrder is the paper's column order.
var listOrder = []zonegen.List{zonegen.Alexa, zonegen.Majestic, zonegen.Umbrella, zonegen.NL, zonegen.Root}

// Table5 renders the dataset/record-count table.
func Table5(results map[zonegen.List]*crawler.Result) *Report {
	tbl := &stats.Table{Title: "Table 5: datasets and RR counts (child authoritative)",
		Header: []string{"", "Alexa", "Majestic", "Umbre.", ".nl", "Root"}}
	row := func(name string, f func(*crawler.Result) string) {
		cells := []string{name}
		for _, l := range listOrder {
			cells = append(cells, f(results[l]))
		}
		tbl.AddRow(cells...)
	}
	row("domains", func(r *crawler.Result) string { return stats.FormatCount(r.Domains) })
	row("responsive", func(r *crawler.Result) string { return stats.FormatCount(r.Responsive) })
	row("discarded", func(r *crawler.Result) string { return stats.FormatCount(r.Discarded) })
	row("ratio", func(r *crawler.Result) string { return fmt.Sprintf("%.2f", r.ResponsiveRatio()) })
	for _, t := range crawler.CrawledTypes {
		row(t.String(), func(r *crawler.Result) string { return stats.FormatCount(r.Types[t].Count) })
		row("  unique", func(r *crawler.Result) string { return stats.FormatCount(r.Types[t].Unique) })
		row("  ratio", func(r *crawler.Result) string {
			if r.Types[t].Unique == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", r.Types[t].Ratio())
		})
	}
	m := map[string]float64{}
	for _, l := range listOrder {
		m["responsive_ratio_"+string(l)] = results[l].ResponsiveRatio()
		m["ns_unique_ratio_"+string(l)] = results[l].Types[dnswire.TypeNS].Ratio()
		m["a_unique_ratio_"+string(l)] = results[l].Types[dnswire.TypeA].Ratio()
	}
	return &Report{ID: "Table 5", Title: "Crawl datasets and record counts", Text: tbl.String(), Metrics: m}
}

// Figure9 renders the per-type TTL CDFs for each list.
func Figure9(results map[zonegen.List]*crawler.Result) *Report {
	text := ""
	m := map[string]float64{}
	figSeries := map[string]*stats.Sample{}
	for _, t := range []dnswire.Type{dnswire.TypeNS, dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeMX, dnswire.TypeDNSKEY} {
		series := map[string]*stats.Sample{}
		for _, l := range listOrder {
			ts := results[l].Types[t]
			if ts != nil && ts.TTLs.Len() > 0 {
				series[string(l)] = ts.TTLs
				m[fmt.Sprintf("median_%s_%s", t, l)] = ts.TTLs.Median()
			}
		}
		text += stats.RenderCDF(fmt.Sprintf("Figure 9 (%s): TTL CDF per list", t), "TTL (s)", series, 64, true) + "\n"
		for label, sample := range series {
			figSeries[fmt.Sprintf("%s_%s", t, label)] = sample
		}
	}
	// The headline shapes.
	if s := results[zonegen.Root].Types[dnswire.TypeNS].TTLs; s.Len() > 0 {
		m["root_ns_frac_ge_1day"] = 1 - s.FractionBelow(86400)
	}
	if s := results[zonegen.Umbrella].Types[dnswire.TypeNS].TTLs; s.Len() > 0 {
		m["umbrella_ns_frac_le_60s"] = s.FractionAtMost(60)
	}
	rep := &Report{ID: "Figure 9", Title: "TTL distributions per record type and list", Text: text, Metrics: m}
	for name, sample := range figSeries {
		rep.AddSeries(name, sample)
	}
	return rep
}

// Table8 renders the zero-TTL census.
func Table8(results map[zonegen.List]*crawler.Result) *Report {
	tbl := &stats.Table{Title: "Table 8: domains with TTL=0, per record type",
		Header: []string{"", "Alexa", "Majestic", "Umbrella", ".nl", "Root"}}
	m := map[string]float64{}
	total := map[zonegen.List]int{}
	for _, t := range crawler.CrawledTypes {
		cells := []string{t.String()}
		for _, l := range listOrder {
			n := results[l].Types[t].ZeroTTLDomains
			total[l] += n
			cells = append(cells, stats.FormatCount(n))
		}
		tbl.AddRow(cells...)
	}
	cells := []string{"total"}
	for _, l := range listOrder {
		cells = append(cells, stats.FormatCount(total[l]))
		m["zero_ttl_"+string(l)] = float64(total[l])
	}
	tbl.AddRow(cells...)
	return &Report{ID: "Table 8", Title: "Zero-TTL domains undermine caching", Text: tbl.String(), Metrics: m}
}

// Table9 renders the bailiwick census.
func Table9(results map[zonegen.List]*crawler.Result) *Report {
	tbl := &stats.Table{Title: "Table 9: bailiwick distribution in the wild",
		Header: []string{"", "Alexa", "Majestic", "Umbre.", ".nl", "Root"}}
	row := func(name string, f func(*crawler.Result) string) {
		cells := []string{name}
		for _, l := range listOrder {
			cells = append(cells, f(results[l]))
		}
		tbl.AddRow(cells...)
	}
	row("responsive", func(r *crawler.Result) string { return stats.FormatCount(r.Responsive) })
	row("CNAME", func(r *crawler.Result) string { return stats.FormatCount(r.CNAMEAnswers) })
	row("SOA", func(r *crawler.Result) string { return stats.FormatCount(r.SOAAnswers) })
	row("respond NS", func(r *crawler.Result) string { return stats.FormatCount(r.RespondNS) })
	row("out only", func(r *crawler.Result) string { return stats.FormatCount(r.OutOnly) })
	row("percent out", func(r *crawler.Result) string { return fmt.Sprintf("%.1f", r.PercentOutOnly()) })
	row("in only", func(r *crawler.Result) string { return stats.FormatCount(r.InOnly) })
	row("mixed", func(r *crawler.Result) string { return stats.FormatCount(r.Mixed) })
	m := map[string]float64{}
	for _, l := range listOrder {
		m["percent_out_"+string(l)] = results[l].PercentOutOnly()
	}
	return &Report{ID: "Table 9", Title: "Bailiwick configuration in the wild", Text: tbl.String(), Metrics: m}
}

// Tables6And7 runs the DMap survey over the generated .nl population.
func Tables6And7(w *zonegen.World, seed int64) *Report {
	s := dmap.Run(w, seed)
	t6 := &stats.Table{Title: "Table 6: .nl domains classified by content",
		Header: []string{"category", "#", "share"}}
	for _, c := range []zonegen.ContentClass{zonegen.Placeholder, zonegen.Ecommerce, zonegen.Parking} {
		t6.AddRow(c.String(), stats.FormatCount(s.Counts[c]),
			fmt.Sprintf("%.1f%%", 100*frac(s.Counts[c], s.Total)))
	}
	t6.AddRow("total", stats.FormatCount(s.Total), "")

	t7 := &stats.Table{Title: "Table 7: median TTLs (hours) per content class",
		Header: []string{"", "E-commerce", "Parking", "Placeholder"}}
	m := map[string]float64{}
	for _, t := range []dnswire.Type{dnswire.TypeNS, dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeMX, dnswire.TypeDNSKEY} {
		cells := []string{t.String()}
		for _, c := range []zonegen.ContentClass{zonegen.Ecommerce, zonegen.Parking, zonegen.Placeholder} {
			v := s.MedianTTLHours[c][t]
			cells = append(cells, fmt.Sprintf("%.1f", v))
			m[fmt.Sprintf("median_h_%s_%s", c, t)] = v
		}
		t7.AddRow(cells...)
	}
	m["classified_total"] = float64(s.Total)
	m["share_placeholder"] = frac(s.Counts[zonegen.Placeholder], s.Total)
	return &Report{ID: "Tables 6-7", Title: "Content classes and their TTL choices (.nl)",
		Text: t6.String() + "\n" + t7.String(), Metrics: m}
}
