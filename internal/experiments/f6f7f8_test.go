package experiments

import (
	"strings"
	"testing"
)

func TestBailiwickPair(t *testing.T) {
	r := BailiwickPair(150, 5)

	// §4.2: before the NS expires, (almost) everyone keeps the old server.
	if f := r.Metric("in_frac_new_before_ns_expiry"); f > 0.15 {
		t.Errorf("in-bailiwick new fraction before NS expiry = %.3f, want ≈0", f)
	}
	// After the NS expires (t≥60min) the coupled majority refreshes the
	// still-valid A record and switches — the paper's ≈90 %.
	if f := r.Metric("in_frac_new_after_ns_expiry"); f < 0.7 {
		t.Errorf("in-bailiwick new fraction after NS expiry = %.3f, want ≈0.9", f)
	}
	// §4.3: out-of-bailiwick resolvers trust the cached A through the NS
	// expiry, switching only after the A's own 2 h.
	if f := r.Metric("out_frac_new_after_ns_expiry"); f > 0.35 {
		t.Errorf("out-of-bailiwick new fraction in 60-120min = %.3f, want small", f)
	}
	if f := r.Metric("out_frac_new_after_both_expiry"); f < 0.6 {
		t.Errorf("out-of-bailiwick new fraction after 2h = %.3f, want high", f)
	}
	// The ordering that IS the finding: in-bailiwick switches a full TTL
	// earlier than out-of-bailiwick.
	if r.Metric("in_frac_new_after_ns_expiry") <= r.Metric("out_frac_new_after_ns_expiry") {
		t.Errorf("in-bailiwick must switch earlier than out-of-bailiwick")
	}
	// Sticky VPs exist (Table 4), a small minority.
	if r.Metric("out_sticky_vps") == 0 {
		t.Errorf("no sticky VPs found out-of-bailiwick")
	}
	if f := r.Metric("out_sticky_frac"); f > 0.3 {
		t.Errorf("sticky fraction = %.3f, too many", f)
	}
	// Figure 8: a solid share of the matched sticky VPs switch
	// in-bailiwick — their out-of-bailiwick stickiness was
	// parent-centricity, not true stickiness (§4.4/§4.5).
	if m := r.Metric("f8_matched_frac_switchers"); m < 0.3 {
		t.Errorf("matched sticky VPs switching in-bailiwick = %.3f, want ≥0.3", m)
	}
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Table 3", "Table 4"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestOfflineChild(t *testing.T) {
	r := OfflineChild(200, 6)
	// Parent-centric profiles answer from the .com referral…
	if f := r.Metric("valid_frac_opendns-like"); f < 0.9 {
		t.Errorf("opendns-like valid fraction = %.3f, want ≈1", f)
	}
	// …while mainstream child-centric resolvers SERVFAIL.
	if f := r.Metric("valid_frac_bind-like"); f > 0.1 {
		t.Errorf("bind-like valid fraction = %.3f, want ≈0", f)
	}
	if f := r.Metric("valid_frac_unbound-like"); f > 0.1 {
		t.Errorf("unbound-like valid fraction = %.3f, want ≈0", f)
	}
}
