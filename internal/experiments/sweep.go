package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs fn(0..n-1) across a pool of workers and returns the results in
// index order. It is the fan-out engine for experiment sweeps: each index is
// an independent configuration (a TTL point, an outage step, a farm size)
// that builds its own seeded Network and Clock, so configurations share no
// state and the output is identical whatever the worker count.
//
// workers <= 0 selects GOMAXPROCS. With one worker (or n == 1) the calls run
// inline on the calling goroutine, so serial sweeps have zero scheduling
// overhead and an identical call graph to the pre-parallel code.
func Sweep[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
