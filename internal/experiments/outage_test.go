package experiments

import "testing"

func TestOutageSweep(t *testing.T) {
	r := OutageSweep(60, 0, 17)
	// Monotone: longer TTLs survive the outage better.
	prev := -1.0
	for _, ttl := range []string{"60", "600", "1800", "3600", "7200"} {
		a := r.Metric("avail_ttl_" + ttl)
		if a < prev-0.05 {
			t.Errorf("availability dropped at TTL %s: %.2f < %.2f", ttl, a, prev)
		}
		prev = a
	}
	// A 60 s TTL is useless against a 1 h outage; 7200 s rides it out.
	if r.Metric("avail_ttl_60") > 0.2 {
		t.Errorf("TTL 60 availability = %.2f, want ≈0", r.Metric("avail_ttl_60"))
	}
	if r.Metric("avail_ttl_7200") < 0.7 {
		t.Errorf("TTL 7200 availability = %.2f, want high", r.Metric("avail_ttl_7200"))
	}
	// Serve-stale rescues even short TTLs.
	if r.Metric("avail_stale_ttl_60") < 0.9 {
		t.Errorf("serve-stale at TTL 60 = %.2f, want ≈1", r.Metric("avail_stale_ttl_60"))
	}

	// Partial outage (loss burst + latency spike): longer TTLs still mean a
	// higher answered fraction, because cached rounds never touch the
	// degraded path.
	prev = -1.0
	for _, ttl := range []string{"60", "600", "1800", "3600", "7200"} {
		a := r.Metric("avail_partial_ttl_" + ttl)
		if a < prev-0.05 {
			t.Errorf("partial-outage availability dropped at TTL %s: %.2f < %.2f", ttl, a, prev)
		}
		prev = a
	}
	if lo, hi := r.Metric("avail_partial_ttl_60"), r.Metric("avail_partial_ttl_7200"); hi < lo+0.2 {
		t.Errorf("partial outage: TTL 7200 (%.2f) should beat TTL 60 (%.2f) clearly", hi, lo)
	}
	// The retry plane rescues most of what a single-shot resolver loses to
	// a 70%-loss window.
	for _, ttl := range []string{"60", "600", "1800", "3600"} {
		strict, retry := r.Metric("avail_partial_ttl_"+ttl), r.Metric("avail_partial_retry_ttl_"+ttl)
		if retry < strict {
			t.Errorf("retries hurt at TTL %s: %.2f < %.2f", ttl, retry, strict)
		}
	}
	if strict, retry := r.Metric("avail_partial_ttl_60"), r.Metric("avail_partial_retry_ttl_60"); retry < strict+0.2 {
		t.Errorf("retry plane at TTL 60 = %.2f vs %.2f strict, want a clear win", retry, strict)
	}
	// Retry + serve-stale masks the partial outage almost completely.
	if a := r.Metric("avail_partial_retry_stale_ttl_60"); a < 0.95 {
		t.Errorf("retry+serve-stale at TTL 60 = %.2f, want ≈1", a)
	}
}
