package experiments

import "testing"

func TestOutageSweep(t *testing.T) {
	r := OutageSweep(60, 0, 17)
	// Monotone: longer TTLs survive the outage better.
	prev := -1.0
	for _, ttl := range []string{"60", "600", "1800", "3600", "7200"} {
		a := r.Metric("avail_ttl_" + ttl)
		if a < prev-0.05 {
			t.Errorf("availability dropped at TTL %s: %.2f < %.2f", ttl, a, prev)
		}
		prev = a
	}
	// A 60 s TTL is useless against a 1 h outage; 7200 s rides it out.
	if r.Metric("avail_ttl_60") > 0.2 {
		t.Errorf("TTL 60 availability = %.2f, want ≈0", r.Metric("avail_ttl_60"))
	}
	if r.Metric("avail_ttl_7200") < 0.7 {
		t.Errorf("TTL 7200 availability = %.2f, want high", r.Metric("avail_ttl_7200"))
	}
	// Serve-stale rescues even short TTLs.
	if r.Metric("avail_stale_ttl_60") < 0.9 {
		t.Errorf("serve-stale at TTL 60 = %.2f, want ≈1", r.Metric("avail_stale_ttl_60"))
	}
}
