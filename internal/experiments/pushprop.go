package experiments

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/farm"
	"dnsttl/internal/latency"
	"dnsttl/internal/push"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// The push-propagation harness measures the third propagation axis the
// paper's TTL story leaves open: instead of choosing between a short TTL
// (fresh but expensive) and a long TTL (cheap but stale), the authoritative
// publishes a change feed and subscribed resolvers purge on NOTIFY. Each
// cell replays the same update schedule against one configuration —
// short-TTL polling, long-TTL polling, long-TTL+push (with and without
// prefetch, at two update rates, across farm topologies), and push with the
// notify channel cut — and records per-round staleness, cache misses, and
// authoritative query volume as pure-integer JSON. The goldens in testdata/
// pin the whole propagation semantics byte for byte.

const (
	// pushRounds x pushInterval = a 48-minute window, long enough for three
	// updates at the default spacing and for the TTL-60 polling cell to pay
	// its refresh cost ~once a minute.
	pushRounds   = 96
	pushInterval = 30 * time.Second
	// pushFirstUpdate is the round of the first zone update. Odd rounds land
	// mid-TTL for the 60 s polling cell (entries refresh on even rounds), so
	// polling's inherent staleness window is actually exercised.
	pushFirstUpdate = 9
)

// pushSubAddr is the resolver service's push-subscriber address; frontends
// occupy pushFarmAddr, pushFarmAddr+1, ...
var (
	pushSubAddr  = netip.MustParseAddr("10.88.0.1")
	pushFarmAddr = netip.MustParseAddr("10.88.0.10")
)

// PushScenario is one cell of the propagation sweep.
type PushScenario struct {
	// Name labels the cell in reports and goldens.
	Name string `json:"name"`
	// TTL is www.cachetest.net's record TTL.
	TTL uint32 `json:"ttl"`
	// Push subscribes the resolver service to the zone's change feed.
	Push bool `json:"push"`
	// Prefetch re-resolves purged names immediately (purge+prefetch).
	Prefetch bool `json:"prefetch"`
	// Frontends sizes the resolver farm; 0 means a single resolver.
	Frontends int `json:"frontends,omitempty"`
	// SharedCache backs the farm with one shared store instead of private
	// per-frontend caches.
	SharedCache bool `json:"shared_cache,omitempty"`
	// UpdateEvery is the round spacing between zone updates (first at round
	// pushFirstUpdate); 0 means the zone never changes.
	UpdateEvery int `json:"update_every"`
	// PollSeconds is the subscriber's SOA-poll fallback period — the
	// staleness bound it accepts when the push channel fails.
	PollSeconds int `json:"poll_seconds,omitempty"`
	// DropSpec, in the ParseFaultSchedule grammar, cuts the notify channel
	// (faults on the subscriber address hit only authoritative->resolver
	// traffic; the resolver's own polls and pulls are unaffected).
	DropSpec string `json:"drop_spec,omitempty"`
}

// PushRound is one probe round's outcome, all integers for byte-stable JSON.
type PushRound struct {
	Round int `json:"round"`
	// Answered counts clients that got an A answer this round.
	Answered int `json:"answered"`
	// Stale counts answers carrying the superseded address.
	Stale int `json:"stale"`
	// StaleSeconds charges pushInterval per stale answer.
	StaleSeconds int `json:"stale_seconds"`
	// Misses counts client resolutions the cache could not answer.
	Misses int `json:"misses"`
	// AuthQueries is the round's query count at ns1.cachetest.net —
	// including the push plane's subscribes, pulls, and polls, so notify
	// overhead is charged to the same budget it claims to save.
	AuthQueries int `json:"auth_queries"`
	// Notifies / Pulls / Polls are the round's push-plane traffic.
	Notifies int `json:"notifies,omitempty"`
	Pulls    int `json:"pulls,omitempty"`
	Polls    int `json:"polls,omitempty"`
}

// PushTotals sums a cell's run.
type PushTotals struct {
	StaleSeconds     int `json:"stale_seconds"`
	StaleAnswers     int `json:"stale_answers"`
	Misses           int `json:"misses"`
	AuthQueries      int `json:"auth_queries"`
	NotifySent       int `json:"notify_sent"`
	IXFR             int `json:"ixfr"`
	AXFRFallback     int `json:"axfr_fallback"`
	Polls            int `json:"polls"`
	PollRecoveries   int `json:"poll_recoveries"`
	Purged           int `json:"purged"`
	Refetches        int `json:"refetches"`
	Subscribes       int `json:"subscribes"`
	SubscribeRetries int `json:"subscribe_retries"`
	StaleDenied      int `json:"stale_denied"`
}

// PushResult is one cell's full replay.
type PushResult struct {
	Scenario PushScenario `json:"scenario"`
	Rounds   []PushRound  `json:"rounds"`
	Totals   PushTotals   `json:"totals"`
}

// PushReport is the harness output: one result per cell.
type PushReport struct {
	Seed    int64        `json:"seed"`
	Clients int          `json:"clients"`
	Results []PushResult `json:"results"`
}

// PushScenarios returns the canned cell set the goldens pin: the
// {polling, push, push+prefetch} x update-rate x fleet-size cross, plus the
// dropped-notify chaos cell. Update spacing 32 puts updates at rounds 9, 41,
// 73; the fast-churn cell updates every 8 rounds.
func PushScenarios() []PushScenario {
	return []PushScenario{
		{
			// The paper's freshness tool: a short TTL. Fresh within 60 s of
			// any change, at ~one authoritative query per minute forever.
			Name: "poll-ttl60", TTL: 60, UpdateEvery: 32,
		},
		{
			// The paper's load tool: a long TTL. One fetch per hour, stale
			// until expiry after every change.
			Name: "poll-ttl3600", TTL: 3600, UpdateEvery: 32,
		},
		{
			// Long TTL + change feed: the NOTIFY purges the record the
			// instant it changes; polling is demoted to a lazy safety net.
			Name: "push-ttl3600", TTL: 3600, Push: true,
			UpdateEvery: 32, PollSeconds: 1800,
		},
		{
			// Purge+prefetch: the subscriber re-resolves the purged name
			// immediately, so clients never even pay the refill miss.
			Name: "push-prefetch-ttl3600", TTL: 3600, Push: true, Prefetch: true,
			UpdateEvery: 32, PollSeconds: 1800,
		},
		{
			// 4x the update rate: push cost scales with change rate, not
			// with TTL or time.
			Name: "push-fastchurn", TTL: 3600, Push: true,
			UpdateEvery: 8, PollSeconds: 1800,
		},
		{
			// 16 private frontend caches: one subscriber purges all 16, but
			// every frontend refills separately — fragmentation (§4.4)
			// multiplies even push-plane refill cost.
			Name: "push-farm16-private", TTL: 3600, Push: true, Frontends: 16,
			UpdateEvery: 32, PollSeconds: 1800,
		},
		{
			// The same fleet behind one shared cache refills once per update.
			Name: "push-farm16-shared", TTL: 3600, Push: true, Frontends: 16,
			SharedCache: true, UpdateEvery: 32, PollSeconds: 1800,
		},
		{
			// Chaos: the notify channel is cut across the middle update
			// (t=900..1980 s; the update lands at t=1230 s). The tight 300 s
			// poll fallback bounds the stale window and recovers the purge.
			Name: "push-dropped-notify", TTL: 3600, Push: true,
			UpdateEvery: 32, PollSeconds: 300,
			DropSpec: "outage:" + pushSubAddr.String() + ":900s+1080s",
		},
	}
}

// answerA returns the first A answer's address, or "".
func answerA(m *dnswire.Message) string {
	if m == nil {
		return ""
	}
	for _, rr := range m.Answer {
		if a, ok := rr.Data.(dnswire.A); ok {
			return a.Addr.String()
		}
	}
	return ""
}

// PushReplay runs one cell with the given client count and returns its
// per-round outcome. Each call builds a fresh seeded testbed, so replays are
// independent and byte-identical per (scenario, clients, seed).
func PushReplay(sc PushScenario, clients int, seed int64) PushResult {
	tb := NewTestbed(seed)
	www := dnswire.NewName("www.cachetest.net")
	if !tb.Ct.SetTTL(www, dnswire.TypeA, sc.TTL) {
		panic("push scenario: missing record")
	}
	ctSrv := tb.Servers[tb.CtAddr]

	frontends := sc.Frontends
	if frontends < 1 {
		frontends = 1
	}
	fcfg := farm.Config{Frontends: frontends, Policy: resolver.DefaultPolicy(), Seed: seed}
	if sc.SharedCache {
		fcfg.Topology = farm.Shared
	}
	tb.Topo.Place(pushSubAddr, latency.EU)
	for i, a := 0, pushFarmAddr; i < frontends; i++ {
		tb.Topo.Place(a, latency.EU)
		a = a.Next()
	}
	svc := farm.New(fcfg, pushFarmAddr, tb.Net, tb.Clock, []netip.Addr{tb.RootAddr})

	var (
		sub  *push.Subscriber
		auth *push.Authority
	)
	if sc.Push {
		feed, err := push.NewFeed(tb.Ct, 0)
		if err != nil {
			panic(fmt.Sprintf("push scenario %s: %v", sc.Name, err))
		}
		auth = push.NewAuthority()
		auth.Send = func(dst netip.AddrPort, wire []byte) error {
			_, _, err := tb.Net.Exchange(tb.CtAddr, dst.Addr(), wire)
			return err
		}
		auth.AddFeed(feed)
		ctSrv.Push = auth
		pcfg := push.Config{
			Addr:      pushSubAddr,
			Net:       tb.Net,
			Clock:     tb.Clock,
			Stores:    svc.Stores(),
			PollEvery: time.Duration(sc.PollSeconds) * time.Second,
		}
		if sc.Prefetch {
			pcfg.Refetch = func(name dnswire.Name, qtype dnswire.Type) {
				_, _ = svc.Resolve(name, qtype)
			}
		}
		sub = push.NewSubscriber(pcfg)
		tb.Net.Attach(pushSubAddr, sub)
		svc.SetStaleGate(sub)
		sub.Subscribe(tb.Ct.Origin, tb.CtAddr)
	}
	if sc.DropSpec != "" {
		fs, err := simnet.ParseFaultSchedule(sc.DropSpec)
		if err != nil {
			panic(fmt.Sprintf("push scenario %s: %v", sc.Name, err))
		}
		fs.Seed = seed
		tb.Net.Faults = fs
	}

	truth := "192.88.99.80"
	version := 0
	nextUpdate := -1
	if sc.UpdateEvery > 0 {
		nextUpdate = pushFirstUpdate
	}
	var (
		prevAuthQ uint64
		prevSub   push.Stats
		prevAuth  push.AuthorityStats
	)
	out := PushResult{Scenario: sc}
	for round := 0; round < pushRounds; round++ {
		now := tb.Clock.Now()
		if sub != nil {
			sub.Tick(now)
		}
		if round == nextUpdate {
			version++
			truth = fmt.Sprintf("192.88.99.%d", 80+version)
			if err := tb.Ct.Replace(www, dnswire.TypeA,
				dnswire.NewA("www.cachetest.net", sc.TTL, truth)); err != nil {
				panic(err)
			}
			nextUpdate += sc.UpdateEvery
		}
		pr := PushRound{Round: round}
		for c := 0; c < clients; c++ {
			res, err := svc.Resolve(www, dnswire.TypeA)
			if err != nil || res == nil {
				continue
			}
			if !res.CacheHit && !res.Coalesced {
				pr.Misses++
			}
			if addr := answerA(res.Msg); addr != "" {
				pr.Answered++
				if addr != truth {
					pr.Stale++
					pr.StaleSeconds += int(pushInterval / time.Second)
				}
			}
		}
		q := ctSrv.QueryCount()
		pr.AuthQueries = int(q - prevAuthQ)
		prevAuthQ = q
		if sub != nil {
			ss, as := sub.Stats(), auth.Stats()
			pr.Notifies = int(as.Notifies - prevAuth.Notifies)
			pr.Pulls = int(ss.IXFR + ss.AXFRFallback - prevSub.IXFR - prevSub.AXFRFallback)
			pr.Polls = int(ss.Polls - prevSub.Polls)
			prevSub, prevAuth = ss, as
		}
		out.Rounds = append(out.Rounds, pr)
		tb.Clock.Advance(pushInterval)
	}

	for _, pr := range out.Rounds {
		out.Totals.StaleSeconds += pr.StaleSeconds
		out.Totals.StaleAnswers += pr.Stale
		out.Totals.Misses += pr.Misses
		out.Totals.AuthQueries += pr.AuthQueries
	}
	if sub != nil {
		ss, as := sub.Stats(), auth.Stats()
		out.Totals.NotifySent = int(as.Notifies)
		out.Totals.IXFR = int(ss.IXFR)
		out.Totals.AXFRFallback = int(ss.AXFRFallback)
		out.Totals.Polls = int(ss.Polls)
		out.Totals.PollRecoveries = int(ss.PollRecoveries)
		out.Totals.Purged = int(ss.Purged)
		out.Totals.Refetches = int(ss.Refetches)
		out.Totals.Subscribes = int(ss.Subscribes)
		out.Totals.SubscribeRetries = int(ss.SubscribeRetries)
		out.Totals.StaleDenied = int(ss.StaleDenied)
	}
	return out
}

// PushRun replays every canned cell, fanning cells across workers. The
// report is identical at any worker count: each cell builds its own testbed
// and clock, and no state crosses cells.
func PushRun(clients, workers int, seed int64) *PushReport {
	scenarios := PushScenarios()
	results := Sweep(len(scenarios), workers, func(i int) PushResult {
		return PushReplay(scenarios[i], clients, seed)
	})
	return &PushReport{Seed: seed, Clients: clients, Results: results}
}

// JSON renders the report as stable, indented JSON — the golden format.
func (r *PushReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// PushExperiment wraps the harness into the standard Report shape: the JSON
// is the text artifact, and each cell contributes its staleness and
// authoritative-load totals as metrics.
func PushExperiment(clients, workers int, seed int64) *Report {
	rep := PushRun(clients, workers, seed)
	m := map[string]float64{}
	for _, res := range rep.Results {
		m["stale_seconds_"+res.Scenario.Name] = float64(res.Totals.StaleSeconds)
		m["auth_queries_"+res.Scenario.Name] = float64(res.Totals.AuthQueries)
	}
	return &Report{
		ID:    "Push propagation",
		Title: "NOTIFY/IXFR change feeds vs TTL polling",
		Text:  string(rep.JSON()),
		Metrics: m,
	}
}
