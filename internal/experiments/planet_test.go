package experiments

import (
	"testing"
	"time"

	"dnsttl/internal/compile"
)

// TestPlanetScaleTier runs the full compiled tier — including the
// 100M-user day — and checks the physics the cells must show. The
// acceptance budget is a 10M-user day under 30 s wall; the whole
// 12-cell tier typically compiles and runs in ~1 s.
func TestPlanetScaleTier(t *testing.T) {
	start := time.Now()
	r := PlanetScale()
	wall := time.Since(start)
	if wall > 60*time.Second {
		t.Fatalf("tier took %v, want well under a minute", wall)
	}
	for _, tier := range []string{"1m", "10m", "100m"} {
		var prevAmp float64
		for i, ttl := range []uint32{30, 300, 3600} {
			hit := r.Metrics["hit_"+tier+"_ttl"+itoa(int(ttl))]
			amp := r.Metrics["amp_"+tier+"_ttl"+itoa(int(ttl))]
			if hit <= 0 || hit >= 1 {
				t.Errorf("%s ttl%d: hit rate %v outside (0,1)", tier, ttl, hit)
			}
			if amp <= 0 {
				t.Errorf("%s ttl%d: amplification %v not positive", tier, ttl, amp)
			}
			// Longer TTLs shed authoritative load — the paper's core claim.
			if i > 0 && amp >= prevAmp {
				t.Errorf("%s: amplification did not fall from ttl %d (%v) to ttl %d (%v)",
					tier, []uint32{30, 300, 3600}[i-1], prevAmp, ttl, amp)
			}
			prevAmp = amp
		}
		if r.Metrics["failed_"+tier+"_chaos"] <= 0 {
			t.Errorf("%s chaos cell reported no failed queries during the outage", tier)
		}
		if ch, base := r.Metrics["hit_"+tier+"_chaos"], r.Metrics["hit_"+tier+"_ttl300"]; ch >= base {
			t.Errorf("%s: chaos hit rate %v not below the undisturbed cell %v", tier, ch, base)
		}
	}
	if tp := r.Metrics["throughput_user_seconds_per_wall_second"]; tp < 1e9 {
		t.Errorf("throughput %v user-seconds/wall-second — the compiler should clear 1e9 easily", tp)
	}
}

// TestPlanetScaleDeterministic pins the closed-form engine: two runs
// must agree bit-for-bit on every metric except the wall-clock ones.
func TestPlanetScaleDeterministic(t *testing.T) {
	a, b := PlanetScale(), PlanetScale()
	for k, av := range a.Metrics {
		if k == "wall_seconds" || k == "throughput_user_seconds_per_wall_second" {
			continue
		}
		if bv := b.Metrics[k]; av != bv {
			t.Errorf("metric %s: %v != %v across runs", k, av, bv)
		}
	}
}

// TestPlanetScale10MUnder30s is the acceptance criterion stated on its
// own: one 10M-user simulated day, wall-clocked.
func TestPlanetScale10MUnder30s(t *testing.T) {
	start := time.Now()
	res, err := compile.CompileAndRun(planetSpec(1e7, 300))
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall > 30*time.Second {
		t.Fatalf("10M-user day took %v, want < 30s", wall)
	}
	if res.VirtualSeconds != 86400 {
		t.Errorf("virtual span %v, want 86400", res.VirtualSeconds)
	}
	if res.Users != 1e7 {
		t.Errorf("users %v, want 1e7", res.Users)
	}
	t.Logf("10M-user day: %v wall, hit=%.4f amp=%.4f lines=%d",
		wall, res.HitRate(), res.Amplification(), res.Lines)
}
