package experiments

import (
	"bytes"
	"context"
	"net/netip"
	"reflect"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/middleware"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// TestDefaultPipelineEquivalence is the refactor's safety property: the
// zero-config middleware pipeline must be byte-for-byte the pre-refactor
// datapath. It replays every chaos golden scenario twice from the same
// seed — once calling resolver.Resolve directly (the old facade path),
// once through middleware.Default wrapping the same lookup — and compares
// each resolution's encoded wire message and full trace. The chaos
// scenarios are the hardest cases on purpose: timeouts, retries with
// jittered backoff, hedging, serve-stale, and SERVFAIL storms all have to
// come out identical through the extra layer.
func TestDefaultPipelineEquivalence(t *testing.T) {
	const probes = 4
	const seed = 42
	for _, sc := range ChaosScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			direct := equivReplay(t, sc, probes, seed, false)
			piped := equivReplay(t, sc, probes, seed, true)
			if len(direct) != len(piped) {
				t.Fatalf("resolution counts differ: %d direct, %d piped", len(direct), len(piped))
			}
			for i := range direct {
				if !bytes.Equal(direct[i].wire, piped[i].wire) {
					t.Fatalf("resolution %d: wire bytes differ\ndirect: %x\npiped:  %x",
						i, direct[i].wire, piped[i].wire)
				}
				if !reflect.DeepEqual(direct[i].trace, piped[i].trace) {
					t.Fatalf("resolution %d: traces differ\ndirect: %+v\npiped:  %+v",
						i, direct[i].trace, piped[i].trace)
				}
			}
		})
	}
}

// equivRecord is one resolution's observable outcome: the encoded answer
// and the complete trace.
type equivRecord struct {
	wire  []byte
	trace resolver.Trace
}

// equivReplay mirrors ChaosReplay's world exactly, but records every
// resolution, optionally routing it through a zero-config pipeline.
func equivReplay(t *testing.T, sc ChaosScenario, probes int, seed int64, piped bool) []equivRecord {
	t.Helper()
	tb := NewTestbed(seed)
	if !tb.Ct.SetTTL(dnswire.NewName("www.cachetest.net"), dnswire.TypeA, 60) {
		t.Fatal("missing record")
	}
	if sc.SecondNS {
		tb.Ct.MustAdd(
			dnswire.NewNS("cachetest.net", 3600, "ns2.cachetest.net"),
			dnswire.NewA("ns2.cachetest.net", 3600, chaosNS2Addr.String()),
		)
		tb.Net_.MustAdd(
			dnswire.NewNS("cachetest.net", 172800, "ns2.cachetest.net"),
			dnswire.NewA("ns2.cachetest.net", 172800, chaosNS2Addr.String()),
		)
		tb.Net.Attach(chaosNS2Addr, tb.Servers[tb.CtAddr])
		tb.Topo.Place(chaosNS2Addr, latency.SA)
	}
	if sc.Spec != "" {
		fs, err := simnet.ParseFaultSchedule(sc.Spec)
		if err != nil {
			t.Fatalf("chaos scenario %s: %v", sc.Name, err)
		}
		fs.Seed = seed
		tb.Net.Faults = fs
	}

	pol := resolver.DefaultPolicy()
	pol.ServeStale = sc.ServeStale
	pol.Retry = sc.Retry

	regions := []latency.Region{latency.EU, latency.NA, latency.SA}
	type leg func(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error)
	legs := make([]leg, probes)
	for i := range legs {
		addr := netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
		tb.Topo.Place(addr, regions[i%len(regions)])
		r := resolver.New(addr, pol, tb.Net, tb.Clock,
			[]netip.Addr{tb.RootAddr}, seed+int64(i))
		if !piped {
			legs[i] = r.Resolve
			continue
		}
		p := middleware.Default(middleware.Env{Lookup: r.Resolve, Clock: tb.Clock})
		client := netip.AddrFrom4([4]byte{10, 10, 0, byte(i + 1)})
		legs[i] = func(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error) {
			resp, err := p.Resolve(context.Background(),
				&middleware.Query{Name: name, Type: qtype, Client: client})
			if err != nil || resp == nil {
				return nil, err
			}
			return resp.Result, nil
		}
	}

	name := dnswire.NewName("www.cachetest.net")
	var out []equivRecord
	for round := 0; round < chaosRounds; round++ {
		for _, lookup := range legs {
			res, err := lookup(name, dnswire.TypeA)
			if err != nil || res == nil {
				t.Fatalf("round %d: unexpected resolution error: %v", round, err)
			}
			wire, err := dnswire.Encode(res.Msg)
			if err != nil {
				t.Fatalf("round %d: encode: %v", round, err)
			}
			out = append(out, equivRecord{wire: wire, trace: res.Trace})
		}
		tb.Clock.Advance(chaosInterval)
	}
	return out
}
