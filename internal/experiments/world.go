package experiments

import (
	"net/netip"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/population"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Testbed is the controlled world the active experiments run on: a root,
// the TLDs the paper touches (.net, .com, .co, .uy, .cl), the cachetest.net
// test domain with its sub zone, and the out-of-bailiwick helper domain.
// It mirrors §4.1's setup with the TTLs the paper reports.
type Testbed struct {
	Clock *simnet.VirtualClock
	Net   *simnet.Network
	Topo  *latency.Topology

	Root *zone.Zone

	// Addresses of every authoritative in the testbed.
	RootAddr, NetAddr, ComAddr, CoAddr netip.Addr
	UyAddr                             netip.Addr
	ClAddr                             netip.Addr
	CtAddr                             netip.Addr // ns1.cachetest.net
	SubAddr, SubAddr2                  netip.Addr // sub.cachetest.net old/new
	ZurroAddr                          netip.Addr // ns1.zurro-dns.com
	GoogleCoAddr                       netip.Addr // ns1.google.com
	MapacheAddr                        netip.Addr // controlled-TTL test domain
	MapacheAnycast                     netip.Addr // same service behind anycast

	// Zones the experiments mutate.
	Uy, Cl, Net_, Com, Co, Ct, Sub, Zurro, GoogleCo, Mapache *zone.Zone
	// MapacheExtra holds the controlled domain's helper zones
	// (mapache-dns.net and the anycast sibling).
	MapacheExtra []*zone.Zone

	Servers map[netip.Addr]*authoritative.Server
}

// addrSeq hands out testbed addresses.
type addrSeq uint32

func (a *addrSeq) next() netip.Addr {
	*a++
	v := uint32(*a)
	return netip.AddrFrom4([4]byte{192, 88, byte(v >> 8), byte(v)})
}

// NewTestbed builds the world. Latency: the root and the mapache anycast
// service are anycast; everything else is unicast — the .uy and .cl servers
// in South America, the EC2-Frankfurt-style test servers in Europe.
func NewTestbed(seed int64) *Testbed {
	tb := &Testbed{
		Clock:   simnet.NewVirtualClock(),
		Net:     simnet.NewNetwork(seed),
		Topo:    latency.NewTopology(),
		Servers: make(map[netip.Addr]*authoritative.Server),
	}
	tb.Net.LatencyFor = tb.Topo.LatencyFor
	// Position the network in virtual time so fault schedules (Net.Faults)
	// see the same clock the caches and drivers do.
	tb.Net.Clock = tb.Clock
	var seq addrSeq
	tb.RootAddr = seq.next()
	tb.NetAddr = seq.next()
	tb.ComAddr = seq.next()
	tb.CoAddr = seq.next()
	tb.UyAddr = seq.next()
	tb.ClAddr = seq.next()
	tb.CtAddr = seq.next()
	tb.SubAddr = seq.next()
	tb.SubAddr2 = seq.next()
	tb.ZurroAddr = seq.next()
	tb.GoogleCoAddr = seq.next()
	tb.MapacheAddr = seq.next()
	tb.MapacheAnycast = seq.next()

	// Placement: root and big gTLD infrastructure are anycast worldwide;
	// ccTLD unicast at home; EC2 test servers in EU.
	global := latency.Route53Like()
	tb.Topo.PlaceAnycast(tb.RootAddr, global)
	tb.Topo.PlaceAnycast(tb.NetAddr, global)
	tb.Topo.PlaceAnycast(tb.ComAddr, global)
	tb.Topo.Place(tb.CoAddr, latency.SA)
	// .uy: anycast with sites on the American/European corridor only, so
	// AS/OC/AF clients pay transcontinental RTTs (Figure 10b's spread).
	tb.Topo.PlaceAnycast(tb.UyAddr, &latency.AnycastCatalog{
		Sites: []latency.Region{latency.SA, latency.SA, latency.NA, latency.EU},
	})
	tb.Topo.Place(tb.ClAddr, latency.SA)
	tb.Topo.Place(tb.CtAddr, latency.EU)
	tb.Topo.Place(tb.SubAddr, latency.EU)
	tb.Topo.Place(tb.SubAddr2, latency.EU)
	tb.Topo.Place(tb.ZurroAddr, latency.EU)
	tb.Topo.PlaceAnycast(tb.GoogleCoAddr, global)
	tb.Topo.Place(tb.MapacheAddr, latency.EU)
	tb.Topo.PlaceAnycast(tb.MapacheAnycast, global)

	tb.buildZones()
	return tb
}

func (tb *Testbed) serve(addr netip.Addr, name string, zs ...*zone.Zone) *authoritative.Server {
	s := authoritative.NewServer(dnswire.NewName(name), tb.Clock)
	for _, z := range zs {
		s.AddZone(z)
	}
	tb.Net.Attach(addr, s)
	tb.Servers[addr] = s
	return s
}

func (tb *Testbed) buildZones() {
	a := func(addr netip.Addr) string { return addr.String() }

	tb.Root = zone.New(dnswire.Root)
	tb.Root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "nstld.example.", 2019021400, 1800, 900, 604800, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, a(tb.RootAddr)),
		// TLD delegations, all with the root's 2-day TTLs.
		dnswire.NewNS("net", 172800, "a.gtld-servers.net"),
		dnswire.NewA("a.gtld-servers.net", 172800, a(tb.NetAddr)),
		dnswire.NewNS("com", 172800, "a.gtld-servers.net"),
		dnswire.NewNS("co", 172800, "ns1.cctld.co"),
		dnswire.NewA("ns1.cctld.co", 172800, a(tb.CoAddr)),
		// Table 1/§3.2: parent glue says two days.
		dnswire.NewNS("uy", 172800, "a.nic.uy"),
		dnswire.NewA("a.nic.uy", 172800, a(tb.UyAddr)),
		dnswire.NewNS("cl", 172800, "a.nic.cl"),
		dnswire.NewA("a.nic.cl", 172800, a(tb.ClAddr)),
	)

	tb.Net_ = zone.New(dnswire.NewName("net"))
	tb.Net_.MustAdd(
		dnswire.NewSOA("net", 900, "a.gtld-servers.net", "nstld.example.", 1, 1800, 900, 604800, 900),
		dnswire.NewNS("net", 172800, "a.gtld-servers.net"),
		dnswire.NewA("a.gtld-servers.net", 172800, a(tb.NetAddr)),
		// cachetest.net delegation (§4.1): .net default two-day TTLs.
		dnswire.NewNS("cachetest.net", 172800, "ns1.cachetest.net"),
		dnswire.NewA("ns1.cachetest.net", 172800, a(tb.CtAddr)),
	)

	tb.Com = zone.New(dnswire.NewName("com"))
	tb.Com.MustAdd(
		dnswire.NewSOA("com", 900, "a.gtld-servers.net", "nstld.example.", 1, 1800, 900, 604800, 900),
		dnswire.NewNS("com", 172800, "a.gtld-servers.net"),
		// zurro-dns.com: the out-of-bailiwick nameserver's own domain.
		// .com uses its standard two-day delegation TTLs — this is the
		// parent data OpenDNS trusted in §4.4; the child zone's own
		// copies carry 3600/7200 (§4.3).
		dnswire.NewNS("zurro-dns.com", 172800, "ns1.zurro-dns.com"),
		dnswire.NewA("ns1.zurro-dns.com", 172800, a(tb.ZurroAddr)),
	)

	// .co registry: google.co's parent says 900 s (§3.3).
	tb.Co = zone.New(dnswire.NewName("co"))
	tb.Co.MustAdd(
		dnswire.NewSOA("co", 900, "ns1.cctld.co", "reg.cctld.co", 1, 1800, 900, 604800, 900),
		dnswire.NewNS("co", 172800, "ns1.cctld.co"),
		dnswire.NewA("ns1.cctld.co", 172800, a(tb.CoAddr)),
		dnswire.NewNS("google.co", 900, "ns1.google.com"),
		// mapache-de-madrid.co: the §6.2 controlled domain, plus an
		// anycast-served sibling for the TTL60-s-anycast column.
		dnswire.NewNS("mapache-de-madrid.co", 172800, "ns1.mapache-dns.net"),
		dnswire.NewNS("mapache-any.co", 172800, "ns-any.mapache-dns.net"),
	)
	// ns1.google.com lives in .com (out of bailiwick of google.co).
	tb.Com.MustAdd(
		dnswire.NewNS("google.com", 172800, "ns1.google.com"),
		dnswire.NewA("ns1.google.com", 172800, a(tb.GoogleCoAddr)),
	)
	tb.Net_.MustAdd(
		dnswire.NewNS("mapache-dns.net", 172800, "ns1.mapache-dns.net"),
		dnswire.NewA("ns1.mapache-dns.net", 172800, a(tb.MapacheAddr)),
		dnswire.NewA("ns-any.mapache-dns.net", 172800, a(tb.MapacheAnycast)),
	)

	// Uruguay's ccTLD before the change: child NS 300 s, server A 120 s.
	tb.Uy = zone.New(dnswire.NewName("uy"))
	tb.Uy.MustAdd(
		dnswire.NewSOA("uy", 300, "a.nic.uy", "hostmaster.nic.uy", 1, 1800, 900, 604800, 300),
		dnswire.NewNS("uy", 300, "a.nic.uy"),
		dnswire.NewA("a.nic.uy", 120, a(tb.UyAddr)),
	)

	// Chile's ccTLD (Table 1): child NS 3600, server A 43200.
	tb.Cl = zone.New(dnswire.NewName("cl"))
	tb.Cl.MustAdd(
		dnswire.NewSOA("cl", 3600, "a.nic.cl", "hostmaster.nic.cl", 1, 1800, 900, 604800, 3600),
		dnswire.NewNS("cl", 3600, "a.nic.cl"),
		dnswire.NewA("a.nic.cl", 43200, a(tb.ClAddr)),
	)

	// google.co: child NS TTL 345600 (§3.3), served out of bailiwick.
	tb.GoogleCo = zone.New(dnswire.NewName("google.co"))
	tb.GoogleCo.MustAdd(
		dnswire.NewSOA("google.co", 345600, "ns1.google.com", "dns-admin.google.com", 1, 900, 900, 1800, 60),
		dnswire.NewNS("google.co", 345600, "ns1.google.com"),
		dnswire.NewA("google.co", 300, "192.88.99.1"),
	)

	// cachetest.net (§4.1): child TTLs 3600.
	tb.Ct = zone.New(dnswire.NewName("cachetest.net"))
	tb.Ct.MustAdd(
		dnswire.NewSOA("cachetest.net", 3600, "ns1.cachetest.net", "admin.cachetest.net", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("cachetest.net", 3600, "ns1.cachetest.net"),
		dnswire.NewA("ns1.cachetest.net", 3600, a(tb.CtAddr)),
		dnswire.NewA("www.cachetest.net", 300, "192.88.99.80"),
	)

	// Controlled-TTL domain (§6.2): unique-name subtrees with 60 s and
	// 86400 s TTLs plus two shared names; the anycast sibling domain
	// carries the shared 60 s name behind the anycast address.
	tb.Mapache = zone.New(dnswire.NewName("mapache-de-madrid.co"))
	tb.Mapache.MustAdd(
		dnswire.NewSOA("mapache-de-madrid.co", 3600, "ns1.mapache-dns.net", "x.mapache-de-madrid.co", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("mapache-de-madrid.co", 172800, "ns1.mapache-dns.net"),
		dnswire.NewAAAA("*.u60.mapache-de-madrid.co", 60, "2001:db8:60::1"),
		dnswire.NewAAAA("*.u86400.mapache-de-madrid.co", 86400, "2001:db8:864::1"),
		dnswire.NewAAAA("1.mapache-de-madrid.co", 60, "2001:db8:60::2"),
		dnswire.NewAAAA("2.mapache-de-madrid.co", 86400, "2001:db8:864::2"),
		dnswire.NewAAAA("warmup.mapache-de-madrid.co", 30, "2001:db8::ffff"),
	)
	mapacheDNS := zone.New(dnswire.NewName("mapache-dns.net"))
	mapacheDNS.MustAdd(
		dnswire.NewSOA("mapache-dns.net", 3600, "ns1.mapache-dns.net", "x.mapache-dns.net", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("mapache-dns.net", 86400, "ns1.mapache-dns.net"),
		dnswire.NewA("ns1.mapache-dns.net", 86400, a(tb.MapacheAddr)),
		dnswire.NewA("ns-any.mapache-dns.net", 86400, a(tb.MapacheAnycast)),
	)
	mapacheAny := zone.New(dnswire.NewName("mapache-any.co"))
	mapacheAny.MustAdd(
		dnswire.NewSOA("mapache-any.co", 3600, "ns-any.mapache-dns.net", "x.mapache-any.co", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("mapache-any.co", 172800, "ns-any.mapache-dns.net"),
		dnswire.NewAAAA("4.mapache-any.co", 60, "2001:db8:60::4"),
		dnswire.NewAAAA("warmup.mapache-any.co", 30, "2001:db8::fffe"),
	)
	tb.MapacheExtra = []*zone.Zone{mapacheDNS, mapacheAny}

	tb.serve(tb.RootAddr, "a.root-servers.net", tb.Root)
	tb.serve(tb.NetAddr, "a.gtld-servers.net", tb.Net_, tb.Com) // gTLD farm serves both
	tb.Net.Attach(tb.ComAddr, tb.Servers[tb.NetAddr])
	tb.Servers[tb.ComAddr] = tb.Servers[tb.NetAddr]
	tb.serve(tb.CoAddr, "ns1.cctld.co", tb.Co)
	tb.serve(tb.UyAddr, "a.nic.uy", tb.Uy)
	tb.serve(tb.ClAddr, "a.nic.cl", tb.Cl)
	tb.serve(tb.CtAddr, "ns1.cachetest.net", tb.Ct)
	tb.serve(tb.GoogleCoAddr, "ns1.google.com", tb.GoogleCo)
	mapacheSrv := tb.serve(tb.MapacheAddr, "ns1.mapache-dns.net", tb.Mapache)
	for _, z := range tb.MapacheExtra {
		mapacheSrv.AddZone(z)
	}
	// The anycast variant fronts the same server and zones.
	tb.Net.Attach(tb.MapacheAnycast, mapacheSrv)
	tb.Servers[tb.MapacheAnycast] = mapacheSrv
}

// ConfigureSub installs the sub.cachetest.net zone (§4.2/§4.3) with either
// an in-bailiwick server (ns3.sub.cachetest.net, glue in the parent) or the
// out-of-bailiwick ns1.zurro-dns.com. NS TTL is 3600, the server address
// record 7200, the probe AAAA 60 — the paper's parameters.
func (tb *Testbed) ConfigureSub(inBailiwick bool) {
	// Reset any previous configuration.
	tb.Ct.Remove(dnswire.NewName("sub.cachetest.net"), dnswire.TypeNS)
	tb.Ct.Remove(dnswire.NewName("ns3.sub.cachetest.net"), dnswire.TypeA)

	tb.Sub = zone.New(dnswire.NewName("sub.cachetest.net"))
	tb.Sub.MustAdd(dnswire.NewSOA("sub.cachetest.net", 3600, "ns3.sub.cachetest.net", "admin.cachetest.net", 1, 7200, 3600, 1209600, 60))
	if inBailiwick {
		tb.Ct.MustAdd(
			dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
			dnswire.NewA("ns3.sub.cachetest.net", 7200, tb.SubAddr.String()),
		)
		tb.Sub.MustAdd(
			dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
			dnswire.NewA("ns3.sub.cachetest.net", 7200, tb.SubAddr.String()),
		)
	} else {
		tb.Ct.MustAdd(dnswire.NewNS("sub.cachetest.net", 3600, "ns1.zurro-dns.com"))
		tb.Sub.MustAdd(dnswire.NewNS("sub.cachetest.net", 3600, "ns1.zurro-dns.com"))
		// The zurro-dns.com zone answers for its own nameserver address.
		tb.Zurro = zone.New(dnswire.NewName("zurro-dns.com"))
		tb.Zurro.MustAdd(
			dnswire.NewSOA("zurro-dns.com", 3600, "ns1.zurro-dns.com", "x.zurro-dns.com", 1, 7200, 3600, 1209600, 60),
			dnswire.NewNS("zurro-dns.com", 3600, "ns1.zurro-dns.com"),
			dnswire.NewA("ns1.zurro-dns.com", 7200, tb.ZurroAddr.String()),
		)
	}
	// Probe content: the answer that changes when we renumber.
	tb.Sub.MustAdd(dnswire.NewAAAA("*.sub.cachetest.net", 60, "2001:db8::1"))

	// Serve the sub zone from the right place.
	if inBailiwick {
		tb.serve(tb.SubAddr, "ns3.sub.cachetest.net", tb.Sub)
	} else {
		tb.serve(tb.ZurroAddr, "ns1.zurro-dns.com", tb.Zurro, tb.Sub)
	}
}

// RenumberSub performs the §4.2/§4.3 manipulation: the sub zone's server
// moves to SubAddr2 with different probe content. For the in-bailiwick
// setup the parent and child glue change; for out-of-bailiwick the
// A record inside zurro-dns.com changes (as .com dynamic updates did).
func (tb *Testbed) RenumberSub(inBailiwick bool) {
	newSub := zone.New(dnswire.NewName("sub.cachetest.net"))
	newSub.MustAdd(dnswire.NewSOA("sub.cachetest.net", 3600, "ns3.sub.cachetest.net", "admin.cachetest.net", 2, 7200, 3600, 1209600, 60))
	newSub.MustAdd(dnswire.NewAAAA("*.sub.cachetest.net", 60, "2001:db8::2"))
	if inBailiwick {
		newSub.MustAdd(
			dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
			dnswire.NewA("ns3.sub.cachetest.net", 7200, tb.SubAddr2.String()),
		)
		tb.serve(tb.SubAddr2, "ns3.sub.cachetest.net", newSub)
		// Parent glue moves too; the old server keeps running with the
		// old content, as the paper's original EC2 VM did.
		if err := tb.Ct.Replace(dnswire.NewName("ns3.sub.cachetest.net"), dnswire.TypeA,
			dnswire.NewA("ns3.sub.cachetest.net", 7200, tb.SubAddr2.String())); err != nil {
			panic(err)
		}
		return
	}
	newSub.MustAdd(dnswire.NewNS("sub.cachetest.net", 3600, "ns1.zurro-dns.com"))
	newZurro := zone.New(dnswire.NewName("zurro-dns.com"))
	newZurro.MustAdd(
		dnswire.NewSOA("zurro-dns.com", 3600, "ns1.zurro-dns.com", "x.zurro-dns.com", 2, 7200, 3600, 1209600, 60),
		dnswire.NewNS("zurro-dns.com", 3600, "ns1.zurro-dns.com"),
		dnswire.NewA("ns1.zurro-dns.com", 7200, tb.SubAddr2.String()),
	)
	tb.serve(tb.SubAddr2, "ns1.zurro-dns.com", newZurro, newSub)
	tb.Topo.Place(tb.SubAddr2, latency.EU)
	// The .com glue is renumbered (the paper verified the dynamic update
	// propagated in seconds); the old VM keeps serving its old zone files.
	if err := tb.Com.Replace(dnswire.NewName("ns1.zurro-dns.com"), dnswire.TypeA,
		dnswire.NewA("ns1.zurro-dns.com", 172800, tb.SubAddr2.String())); err != nil {
		panic(err)
	}
}

// Builder returns a population.Builder over this testbed.
func (tb *Testbed) Builder() *population.Builder {
	return &population.Builder{
		Net:           tb.Net,
		Clock:         tb.Clock,
		RootHints:     []netip.Addr{tb.RootAddr},
		LocalRootZone: tb.Root,
		Network:       tb.Net,
	}
}

// Fleet builds a VP fleet over the testbed.
func (tb *Testbed) Fleet(probes int, mix population.Mix, seed int64) *atlas.Fleet {
	return atlas.NewFleet(atlas.FleetConfig{
		Probes:      probes,
		MultiVPFrac: 0.35,
		SharedFrac:  0.8,
		Mix:         mix,
		Seed:        seed,
	}, tb.Builder(), tb.Topo)
}

// RoundsFor converts a duration into 600 s rounds.
func RoundsFor(d time.Duration) int {
	return int(d / (600 * time.Second))
}
