package experiments

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tb := NewTestbed(1)
	r := Table1(tb)
	if r.Metric("parent_ns_ttl") != 172800 {
		t.Errorf("parent NS TTL = %v, want 172800", r.Metric("parent_ns_ttl"))
	}
	if r.Metric("child_ns_ttl") != 3600 {
		t.Errorf("child NS TTL = %v, want 3600", r.Metric("child_ns_ttl"))
	}
	if r.Metric("child_a_ttl") != 43200 {
		t.Errorf("child A TTL = %v, want 43200", r.Metric("child_a_ttl"))
	}
	for _, want := range []string{"a.root-servers.net", "a.nic.cl", "172800", "3600*", "43200*"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, r.Text)
		}
	}
}

func TestFigure1UyNS(t *testing.T) {
	r := Figure1UyNS(250, 1)
	// Paper: ~90 % of answers carry the child TTL; ~10 % parent-side;
	// ~2.9 % at the full 172800.
	if f := r.Metric("frac_child_centric"); f < 0.8 || f > 0.97 {
		t.Errorf("child-centric fraction = %.3f, want ≈0.9", f)
	}
	if f := r.Metric("frac_parent_ttl"); f < 0.03 || f > 0.2 {
		t.Errorf("parent fraction = %.3f, want ≈0.1", f)
	}
	if f := r.Metric("frac_full_parent"); f <= 0 || f > 0.1 {
		t.Errorf("full-parent fraction = %.3f, want ≈0.029", f)
	}
	if r.Metric("frac_over_parent") > 0.001 {
		t.Errorf("answers above the parent TTL should be essentially absent")
	}
	if r.Metric("valid_responses") < 1000 {
		t.Errorf("valid responses = %v", r.Metric("valid_responses"))
	}
}

func TestFigure1UyA(t *testing.T) {
	r := Figure1UyA(200, 2)
	if f := r.Metric("frac_child_centric"); f < 0.8 {
		t.Errorf("a.nic.uy-A child fraction = %.3f, want ≈0.88", f)
	}
}

func TestFigure2GoogleCo(t *testing.T) {
	r := Figure2GoogleCo(250, 3)
	// Paper: ~70 % of answers above 900 (child-side), ~15 % capped at
	// 21599, ~9 % exactly 900.
	if f := r.Metric("frac_over_parent"); f < 0.6 || f > 0.98 {
		t.Errorf("over-parent fraction = %.3f, want ≈0.7+", f)
	}
	if f := r.Metric("frac_capped_21599"); f < 0.05 || f > 0.3 {
		t.Errorf("capped fraction = %.3f, want ≈0.15", f)
	}
	if f := r.Metric("frac_exact_parent"); f <= 0 || f > 0.25 {
		t.Errorf("exact-parent fraction = %.3f, want ≈0.09", f)
	}
}
