package experiments

import (
	"sync/atomic"
	"testing"
)

func TestSweepOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out := Sweep(17, workers, func(i int) int { return i * i })
		if len(out) != 17 {
			t.Fatalf("workers=%d: got %d results, want 17", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	if out := Sweep(0, 4, func(i int) int { return i }); out != nil {
		t.Errorf("Sweep(0, ...) = %v, want nil", out)
	}
}

func TestSweepRunsEachIndexOnce(t *testing.T) {
	var calls [100]atomic.Int32
	Sweep(len(calls), 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}
}
