package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/farm"
	"dnsttl/internal/middleware"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
)

// The water-torture tier measures the one workload the paper's TTL analysis
// cannot help with: a random-subdomain flood. Every attack qname is unique,
// so no TTL regime ever produces a cache hit — each attack query the farm
// accepts translates 1:1 into an authoritative query, exactly the
// random-subdomain failure mode "Modeling and Predicting DNS Server Load"
// models analytically. The tier crosses the two defenses this repo ships
// against that flood:
//
//   - "rrl": authoritative-side response rate limiting. The NXDomain band
//     keys on the *zone origin*, so the per-band bucket sees the full attack
//     rate despite the qname randomization, and slip sends every 2nd limited
//     response truncated so honest clients sharing the resolver's address
//     block can fall back to TCP.
//   - "edge": a per-client token-bucket stage in the farm's middleware
//     pipeline, which refuses the flood before it ever leaves the resolver.
//     Its effectiveness divides by the frontend count — each frontend runs
//     its own pipeline instance, and unique qnames spread across all of
//     them — which the frontends axis makes visible.
//
// against an unprotected baseline and the combination, at 1 and 4 frontends
// under private and shared cache topologies, with a fixed honest Zipf
// stream riding along to price the collateral damage. Every count in the
// report is an integer, so the golden JSON is byte-stable, and every cell
// rebuilds its world from the same seed, so the report is identical at any
// worker count.

// abuseAttackPrefix marks attack qnames. The honest workload generator
// names records w0000..w0149, so any label starting "wt" is attack-only.
const abuseAttackPrefix = "wt"

// abuseEdgeSpec is the farm-side defense: one per-client token bucket in
// front of the resolver. The attacker runs at ~24 q/s against qps=1;
// honest clients at ~0.5 q/s each never touch the limit. action = "drop"
// starves the flood of even REFUSED responses.
const abuseEdgeSpec = `
entry = "guard"

[stage.guard]
type = "ratelimit"
qps = 1
burst = 20
action = "drop"
next = "resolve"

[stage.resolve]
type = "resolver"
`

// abuseRRLConfig is the authoritative-side defense: 2 responses/second
// sustained per ⟨band, client /24⟩ with a burst of 10 and BIND's slip=2.
func abuseRRLConfig() authoritative.RRLConfig {
	return authoritative.RRLConfig{RPS: 2, Burst: 10, Slip: 2, Prefix4: 24, Prefix6: 56}
}

// AbuseCell is one protection × frontends × topology cell. All fields are
// integers so the JSON encoding is byte-stable; rates use milli-units
// (hits per 1000 queries).
type AbuseCell struct {
	Protection string `json:"protection"`
	Frontends  int    `json:"frontends"`
	Topology   string `json:"topology"`

	// The honest stream's outcome: collateral damage shows up here.
	HonestQueries  int `json:"honest_queries"`
	HonestAnswered int `json:"honest_answered"`
	HonestHitMilli int `json:"honest_hit_milli"`

	// The flood as the attacker experiences it.
	AttackQueries  int `json:"attack_queries"`
	AttackLimited  int `json:"attack_limited"`
	AttackNXDomain int `json:"attack_nxdomain"`
	AttackServFail int `json:"attack_servfail"`

	// The flood as the victim authoritative experiences it. Full responses
	// are the amplification currency — a slipped TC=1 reply is smaller
	// than the query and useless for reflection, and a dropped response is
	// free. BypassMilli is authoritative queries received per 1000 attack
	// queries issued: the cache-bypass rate.
	AuthAttackRx    int `json:"auth_attack_rx"`
	AuthAttackFull  int `json:"auth_attack_full"`
	AuthAttackSlip  int `json:"auth_attack_slipped"`
	AuthAttackDrop  int `json:"auth_attack_dropped"`
	AuthAttackBytes int `json:"auth_attack_bytes"`
	BypassMilli     int `json:"bypass_milli"`

	// The obs plane's view of the same fight, proving the counters an
	// operator would alert on actually move: auth.rrl_* on the victim,
	// mw.guard.limited on the farm edge.
	RRLPassed   int `json:"rrl_passed"`
	RRLDropped  int `json:"rrl_dropped"`
	RRLSlipped  int `json:"rrl_slipped"`
	EdgeLimited int `json:"edge_limited"`
}

// AbuseReport is the water-torture harness output, one cell per grid point.
type AbuseReport struct {
	Seed    int64       `json:"seed"`
	Queries int         `json:"queries"`
	Cells   []AbuseCell `json:"cells"`
}

// JSON renders the report deterministically for golden comparison.
func (r *AbuseReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// abuseGrid is the cell plan: every protection mode at every farm shape.
type abuseConfig struct {
	protection string
	nf         int
	topo       farm.Topology
}

func abuseGrid() []abuseConfig {
	shapes := []struct {
		nf   int
		topo farm.Topology
	}{{1, farm.Private}, {4, farm.Private}, {4, farm.Shared}}
	var grid []abuseConfig
	for _, sh := range shapes {
		for _, p := range []string{"open", "rrl", "edge", "full"} {
			grid = append(grid, abuseConfig{protection: p, nf: sh.nf, topo: sh.topo})
		}
	}
	return grid
}

// abuseCell replays the full mixed workload against one configuration.
// queries is the honest stream length; three attack queries ride along
// with every honest arrival (~24 q/s attack against 8 q/s honest).
func abuseCell(cfg abuseConfig, queries int, seed int64) AbuseCell {
	const attackPerHonest = 3
	c := AbuseCell{Protection: cfg.protection, Frontends: cfg.nf, Topology: cfg.topo.String()}

	// Same world as the fragmentation tier: 150 names at TTL 300 keeps the
	// honest stream mostly cache-served, so collateral shows up as lost
	// hit-points rather than noise.
	w := newFarmWorld(150, 300, 8.0, seed)
	reg := obs.NewRegistry(w.clock)
	w.orgSrv.Instrument(reg)
	if cfg.protection == "rrl" || cfg.protection == "full" {
		w.orgSrv.EnableRRL(abuseRRLConfig())
	}

	// Replace the fragmentation tap with one that attributes org-bound
	// traffic to the attack and classifies what came back: nothing (RRL
	// drop), a truncated slip, or a full amplifiable response.
	w.net.Tap = func(ev simnet.TapEvent) {
		if ev.Dst != w.orgAddr {
			return
		}
		q, err := dnswire.Decode(ev.Query)
		if err != nil || len(q.Question) == 0 ||
			!strings.HasPrefix(string(q.Q().Name), abuseAttackPrefix) {
			return
		}
		c.AuthAttackRx++
		if ev.Response == nil {
			c.AuthAttackDrop++
			return
		}
		c.AuthAttackBytes += len(ev.Response)
		if r, err := dnswire.Decode(ev.Response); err == nil && r.Header.TC {
			c.AuthAttackSlip++
		} else {
			c.AuthAttackFull++
		}
	}

	fm := farm.New(farm.Config{
		Frontends: cfg.nf,
		Topology:  cfg.topo,
		Placement: farm.PlaceRandom,
		Coalesce:  true,
		Policy:    resolver.DefaultPolicy(),
		Seed:      seed,
		Registry:  reg,
	}, netip.MustParseAddr("10.40.0.1"), w.net, w.clock, []netip.Addr{w.rootAddr})
	if cfg.protection == "edge" || cfg.protection == "full" {
		if err := fm.SetPipeline(abuseEdgeSpec); err != nil {
			panic(err)
		}
	}

	// 16 honest stub clients share the farm; per-client rate ~0.5 q/s.
	honest := make([]netip.Addr, 16)
	for i := range honest {
		honest[i] = netip.AddrFrom4([4]byte{10, 99, 0, byte(i + 1)})
	}
	attacker := netip.MustParseAddr("10.66.6.6")

	ctx := context.Background()
	atkSeq := 0
	for q := 0; q < queries; q++ {
		gap, name := w.gen.Next()
		w.clock.Advance(gap)
		for a := 0; a < attackPerHonest; a++ {
			an := dnswire.NewName(fmt.Sprintf("%s%06d.example.org", abuseAttackPrefix, atkSeq))
			atkSeq++
			c.AttackQueries++
			resp, err := fm.ResolveQuery(ctx, &middleware.Query{Name: an, Type: dnswire.TypeA, Client: attacker})
			switch {
			case err != nil || resp == nil || resp.Result == nil:
				c.AttackServFail++
			case resp.Verdict == middleware.VerdictLimited:
				c.AttackLimited++
			case resp.Result.Msg.Header.RCode == dnswire.RCodeNXDomain:
				c.AttackNXDomain++
			default:
				c.AttackServFail++
			}
		}
		c.HonestQueries++
		resp, err := fm.ResolveQuery(ctx, &middleware.Query{Name: name, Type: dnswire.TypeA, Client: honest[q%len(honest)]})
		if err == nil && resp != nil && resp.Result != nil {
			res := resp.Result
			if res.Msg.Header.RCode == dnswire.RCodeNoError && len(res.Msg.Answer) > 0 {
				c.HonestAnswered++
			}
			if res.CacheHit {
				c.HonestHitMilli++ // raw hit count for now; scaled below
			}
		}
	}
	if c.HonestQueries > 0 {
		c.HonestHitMilli = c.HonestHitMilli * 1000 / c.HonestQueries
	}
	if c.AttackQueries > 0 {
		c.BypassMilli = c.AuthAttackRx * 1000 / c.AttackQueries
	}
	c.RRLPassed = int(reg.Counter(authoritative.MetricRRLPassed).Value())
	c.RRLDropped = int(reg.Counter(authoritative.MetricRRLDropped).Value())
	c.RRLSlipped = int(reg.Counter(authoritative.MetricRRLSlipped).Value())
	c.EdgeLimited = int(reg.Counter("mw.guard.limited").Value())
	return c
}

// WaterTortureRun replays the full grid and returns the raw integer report
// the goldens pin. Cells are fanned across workers; each rebuilds its own
// world from the same seed, so the report is byte-identical at any worker
// count.
func WaterTortureRun(queries, workers int, seed int64) *AbuseReport {
	if queries <= 0 {
		queries = 1600
	}
	grid := abuseGrid()
	cells := Sweep(len(grid), workers, func(i int) AbuseCell {
		return abuseCell(grid[i], queries, seed)
	})
	return &AbuseReport{Seed: seed, Queries: queries, Cells: cells}
}

// WaterTorture wraps the harness into the standard Report shape for the
// experiment runner, with the headline protection factors computed per
// farm shape: amplification cut (full responses reflected, open vs
// protected), cache-bypass rate, and honest hit-rate collateral.
func WaterTorture(queries, workers int, seed int64) *Report {
	rep := WaterTortureRun(queries, workers, seed)

	byKey := map[string]AbuseCell{}
	key := func(p string, nf int, topo string) string {
		return fmt.Sprintf("%s_f%d_%s", p, nf, topo)
	}
	for _, c := range rep.Cells {
		byKey[key(c.Protection, c.Frontends, c.Topology)] = c
	}

	tbl := &stats.Table{
		Title: fmt.Sprintf("Water-torture flood (~24 q/s random subdomains) vs an 8 q/s honest Zipf stream, %s honest queries per cell",
			stats.FormatCount(rep.Queries)),
		Header: []string{"farm", "protection", "bypass", "auth full", "auth slip",
			"auth drop", "edge limited", "honest hit", "honest ans"},
	}
	m := map[string]float64{}
	for _, c := range rep.Cells {
		k := key(c.Protection, c.Frontends, c.Topology)
		tbl.AddRow(
			fmt.Sprintf("f%d/%s", c.Frontends, c.Topology), c.Protection,
			fmt.Sprintf("%d‰", c.BypassMilli),
			fmt.Sprintf("%d", c.AuthAttackFull),
			fmt.Sprintf("%d", c.AuthAttackSlip),
			fmt.Sprintf("%d", c.AuthAttackDrop),
			fmt.Sprintf("%d", c.EdgeLimited),
			fmt.Sprintf("%d‰", c.HonestHitMilli),
			fmt.Sprintf("%d/%d", c.HonestAnswered, c.HonestQueries),
		)
		m["bypass_milli_"+k] = float64(c.BypassMilli)
		m["auth_full_"+k] = float64(c.AuthAttackFull)
		m["auth_bytes_"+k] = float64(c.AuthAttackBytes)
		m["honest_hit_milli_"+k] = float64(c.HonestHitMilli)
		m["edge_limited_"+k] = float64(c.EdgeLimited)
	}
	// Headline factors per farm shape: how much of the amplification each
	// defense removes, and what it costs the honest stream.
	for _, sh := range []struct {
		nf   int
		topo string
	}{{1, "private"}, {4, "private"}, {4, "shared"}} {
		open := byKey[key("open", sh.nf, sh.topo)]
		for _, p := range []string{"rrl", "edge", "full"} {
			prot := byKey[key(p, sh.nf, sh.topo)]
			cut := 0.0
			if prot.AuthAttackFull > 0 {
				cut = float64(open.AuthAttackFull) / float64(prot.AuthAttackFull)
			}
			m[fmt.Sprintf("amp_cut_%s_f%d_%s", p, sh.nf, sh.topo)] = cut
			m[fmt.Sprintf("collateral_milli_%s_f%d_%s", p, sh.nf, sh.topo)] =
				float64(open.HonestHitMilli - prot.HonestHitMilli)
		}
	}

	return &Report{
		ID:    "Water torture",
		Title: "Random-subdomain floods bypass every TTL regime; RRL cuts the reflected amplification ≥5× and per-client edge limiting starves the flood, at <1 hit-point honest collateral",
		Text: tbl.String() + "\nbypass = authoritative queries per 1000 attack queries (unique qnames defeat the cache);\n" +
			"auth full = complete responses reflected to the attack (the amplification currency);\n" +
			"rrl's error band keys on the zone origin, so qname randomization cannot spread it thin;\n" +
			"edge limiting weakens with farm size: each frontend runs its own bucket.",
		Metrics: m,
	}
}
