package experiments

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// Table1 reproduces the paper's Table 1: walk the resolution chain for a
// ccTLD (.cl) recording, at each step, which server answered, what records
// came back, their TTLs, and which section/authority status carried them —
// the raw demonstration that one record lives in multiple places with
// different TTLs.
func Table1(tb *Testbed) *Report {
	type row struct {
		q       string
		server  string
		rr      dnswire.RR
		section dnswire.Section
		auth    bool
	}
	var rows []row
	var id uint16

	ask := func(server netip.Addr, serverName string, name dnswire.Name, t dnswire.Type, q string) {
		id++
		query := dnswire.NewIterativeQuery(id, name, t)
		wire, err := dnswire.Encode(query)
		if err != nil {
			panic(err)
		}
		respWire, _, err := tb.Net.Exchange(netip.MustParseAddr("10.99.0.1"), server, wire)
		if err != nil {
			return
		}
		resp, err := dnswire.Decode(respWire)
		if err != nil {
			return
		}
		for _, sec := range []dnswire.Section{dnswire.SectionAnswer, dnswire.SectionAuthority, dnswire.SectionAdditional} {
			for _, rr := range resp.Section(sec) {
				if rr.Type == dnswire.TypeSOA {
					continue
				}
				rows = append(rows, row{q: q, server: serverName, rr: rr, section: sec, auth: resp.Header.AA})
			}
		}
	}

	// The three queries of Table 1.
	ask(tb.RootAddr, "a.root-servers.net", dnswire.NewName("cl"), dnswire.TypeNS, ".cl / NS")
	ask(tb.ClAddr, "a.nic.cl", dnswire.NewName("cl"), dnswire.TypeNS, ".cl / NS")
	ask(tb.ClAddr, "a.nic.cl", dnswire.NewName("a.nic.cl"), dnswire.TypeA, "a.nic.cl / A")

	tbl := &stats.Table{
		Title:  "Parent and child TTLs on the .cl chain (star = authoritative answer)",
		Header: []string{"Q / Type", "Server", "Response", "TTL", "Sec."},
	}
	metrics := map[string]float64{}
	for _, r := range rows {
		sec := "Add."
		star := ""
		switch {
		case r.section == dnswire.SectionAnswer && r.auth:
			sec, star = "Ans.", "*"
		case r.section == dnswire.SectionAnswer:
			sec = "Ans."
		case r.section == dnswire.SectionAuthority:
			sec = "Auth."
		}
		tbl.AddRow(r.q, r.server,
			fmt.Sprintf("%s/%s", r.rr.Name, r.rr.Type),
			fmt.Sprintf("%d%s", r.rr.TTL, star), sec)
		key := fmt.Sprintf("ttl_%s_%s_%s", r.server, r.rr.Name, r.rr.Type)
		metrics[key] = float64(r.rr.TTL)
	}
	// The headline divergences.
	metrics["parent_ns_ttl"] = metrics["ttl_a.root-servers.net_cl._NS"]
	metrics["child_ns_ttl"] = metrics["ttl_a.nic.cl_cl._NS"]
	metrics["child_a_ttl"] = metrics["ttl_a.nic.cl_a.nic.cl._A"]

	return &Report{
		ID:      "Table 1",
		Title:   "TTLs for the same records differ between parent and child (.cl case study)",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
