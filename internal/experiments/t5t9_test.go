package experiments

import (
	"strings"
	"testing"

	"dnsttl/internal/zonegen"
)

func TestCrawlTables(t *testing.T) {
	w, results := CrawlWorld(0.05, 42)

	t5 := Table5(results)
	if f := t5.Metric("responsive_ratio_umbrella"); f < 0.70 || f > 0.86 {
		t.Errorf("Umbrella responsive ratio = %.3f, want ≈0.78", f)
	}
	if t5.Metric("ns_unique_ratio_nl") <= t5.Metric("ns_unique_ratio_alexa") {
		t.Errorf(".nl NS sharing should exceed Alexa's")
	}
	if !strings.Contains(t5.Text, "DNSKEY") {
		t.Errorf("Table 5 missing DNSKEY row")
	}

	f9 := Figure9(results)
	if f := f9.Metric("root_ns_frac_ge_1day"); f < 0.65 {
		t.Errorf("root NS ≥1d fraction = %.3f, want ≈0.8", f)
	}
	if f := f9.Metric("umbrella_ns_frac_le_60s"); f < 0.12 {
		t.Errorf("Umbrella NS ≤60s fraction = %.3f, want ≈0.25", f)
	}
	if f9.Metric("median_NS_alexa") <= f9.Metric("median_A_alexa") {
		t.Errorf("Alexa NS median should exceed A median")
	}

	t8 := Table8(results)
	sum := 0.0
	for _, l := range []zonegen.List{zonegen.Alexa, zonegen.Majestic, zonegen.Umbrella, zonegen.NL} {
		sum += t8.Metric("zero_ttl_" + string(l))
	}
	if sum == 0 {
		t.Errorf("no zero-TTL domains in Table 8")
	}
	if t8.Metric("zero_ttl_root") != 0 {
		t.Errorf("root should have no zero-TTL domains")
	}

	t9 := Table9(results)
	if f := t9.Metric("percent_out_alexa"); f < 85 {
		t.Errorf("Alexa out-only = %.1f%%, want >90%%", f)
	}
	if f := t9.Metric("percent_out_root"); f < 35 || f > 62 {
		t.Errorf("root out-only = %.1f%%, want ≈49%%", f)
	}

	t67 := Tables6And7(w, 7)
	if t67.Metric("classified_total") == 0 {
		t.Fatal("no classified domains")
	}
	if f := t67.Metric("share_placeholder"); f < 0.7 {
		t.Errorf("placeholder share = %.3f", f)
	}
	if t67.Metric("median_h_parking_NS") <= t67.Metric("median_h_e-commerce_NS") {
		t.Errorf("parking NS median should exceed e-commerce's (Table 7)")
	}
}
