package experiments

import (
	"testing"

	"dnsttl/internal/zonegen"
)

func TestParentChildComparison(t *testing.T) {
	_, results := CrawlWorld(0.05, 42)
	r := ParentChildComparison(results)

	// The paper's anchor: ≈40 % of .nl children carry NS TTLs shorter
	// than the registry's 3600 s (here "shorter" ≈ CDF below 3600, which
	// excludes the many children sitting exactly at an hour).
	nlBelow := r.Metric("frac_child_shorter_nl")
	if nlBelow < 0.05 || nlBelow > 0.45 {
		t.Errorf(".nl child-shorter fraction = %.3f, want a visible minority", nlBelow)
	}
	// .com-style registries pin delegations at 2 days, so nearly every
	// child is shorter there.
	for _, l := range []zonegen.List{zonegen.Alexa, zonegen.Majestic} {
		f := r.Metric("frac_child_shorter_" + string(l))
		if f < 0.85 {
			t.Errorf("%s child-shorter fraction = %.3f, want ≈1 (parent fixed at 172800)", l, f)
		}
		if ratio := r.Metric("median_ratio_" + string(l)); ratio >= 1 {
			t.Errorf("%s median child/parent ratio = %.3f, want <1", l, ratio)
		}
	}
	// The root list's children (TLD operators) often run long TTLs, so a
	// solid share is at or near the 2-day delegation value.
	rootEqualOrLonger := 1 - r.Metric("frac_child_shorter_root")
	if rootEqualOrLonger < 0.2 {
		t.Errorf("root children at/above parent TTL = %.3f, want a visible share", rootEqualOrLonger)
	}
}

func TestParentChildNlAnchor(t *testing.T) {
	_, results := CrawlWorld(0.1, 7)
	r := ParentChildComparison(results)
	// ≈40 % of .nl children at or below the registry's 3600 s.
	f := r.Metric("frac_child_le_parent_nl")
	if f < 0.25 || f > 0.55 {
		t.Errorf(".nl children ≤ parent TTL = %.3f, want ≈0.40", f)
	}
}
