package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the chaos goldens instead of comparing against them:
//
//	go test ./internal/experiments/ -run TestChaosGolden -update
var update = flag.Bool("update", false, "rewrite chaos golden files")

const (
	chaosProbes = 6
	chaosSeed   = 42
)

func chaosGoldenPath() string {
	return filepath.Join("testdata", "chaos_golden.json")
}

// TestChaosGolden replays the canned fault schedules and compares the full
// per-round outcome — answered, stale, queries, timeouts, retries, hedges —
// byte for byte against the golden. Any drift in retry/backoff/hedging or
// serve-stale semantics fails here first.
func TestChaosGolden(t *testing.T) {
	got := ChaosRun(chaosProbes, 0, chaosSeed).JSON()
	if *update {
		if err := os.WriteFile(chaosGoldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", chaosGoldenPath(), len(got))
		return
	}
	want, err := os.ReadFile(chaosGoldenPath())
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chaos replay drifted from golden %s.\nRegenerate with -update if the change is intentional.\ngot:\n%s", chaosGoldenPath(), got)
	}
}

// TestChaosOutcomes asserts the semantic shape of each scenario — the
// golden pins exact bytes; this pins the story those bytes must tell, so a
// legitimate -update can't silently regress the behavior.
func TestChaosOutcomes(t *testing.T) {
	rep := ChaosRun(chaosProbes, 0, chaosSeed)
	byName := map[string]ChaosResult{}
	for _, r := range rep.Results {
		byName[r.Scenario] = r
	}
	// Fault windows arm at round 2 and clear at round 6.
	window := func(r ChaosResult) []ChaosRound { return r.Rounds[2:6] }
	clean := func(r ChaosResult) []ChaosRound {
		return append(append([]ChaosRound(nil), r.Rounds[:2]...), r.Rounds[6:]...)
	}

	base := byName["baseline"]
	for _, rd := range base.Rounds {
		if rd.Answered != chaosProbes || rd.Stale != 0 || rd.Timeouts != 0 ||
			rd.Retries != 0 || rd.Hedges != 0 {
			t.Errorf("baseline round %d not clean: %+v", rd.Round, rd)
		}
	}

	// Hard outage: every in-window answer is stale, with exactly one timed
	// out probe query each round (single-shot legacy resolver).
	for _, rd := range window(byName["outage-stale"]) {
		if rd.Answered != chaosProbes || rd.Stale != chaosProbes || rd.Timeouts != chaosProbes {
			t.Errorf("outage-stale round %d: %+v, want all stale", rd.Round, rd)
		}
	}
	for _, rd := range clean(byName["outage-stale"]) {
		if rd.Stale != 0 {
			t.Errorf("outage-stale round %d stale outside the window: %+v", rd.Round, rd)
		}
	}

	// Loss burst + retries: retries fire in-window and rescue most rounds
	// without any stale answers.
	lossRetries, lossAnswered := 0, 0
	for _, rd := range window(byName["loss-retry"]) {
		lossRetries += rd.Retries
		lossAnswered += rd.Answered
		if rd.Stale != 0 {
			t.Errorf("loss-retry round %d used stale: %+v", rd.Round, rd)
		}
	}
	if lossRetries == 0 {
		t.Error("loss-retry: no retries fired during the loss window")
	}
	if lossAnswered < 4*chaosProbes-4 {
		t.Errorf("loss-retry answered %d/%d in-window, want near-full rescue", lossAnswered, 4*chaosProbes)
	}

	// Latency spike + hedging: hedges fire and every round stays answered.
	hedges := 0
	for _, rd := range byName["spike-hedge"].Rounds {
		hedges += rd.Hedges
		if rd.Answered != chaosProbes {
			t.Errorf("spike-hedge round %d dropped answers: %+v", rd.Round, rd)
		}
		if rd.Retries != 0 {
			t.Errorf("spike-hedge round %d retried (%+v); hedging should carry it", rd.Round, rd)
		}
	}
	if hedges == 0 {
		t.Error("spike-hedge: no hedged queries fired")
	}

	// SERVFAIL storm: failure rcodes are retryable under an active policy,
	// so every probe burns its full 3-attempt budget (2 retries each) and
	// then serve-stale answers anyway.
	for _, rd := range window(byName["servfail-storm"]) {
		if rd.Answered != chaosProbes || rd.Stale != chaosProbes {
			t.Errorf("servfail-storm round %d: %+v, want all stale-answered", rd.Round, rd)
		}
		if rd.Retries != 2*chaosProbes {
			t.Errorf("servfail-storm round %d retries = %d, want %d (full budget)", rd.Round, rd.Retries, 2*chaosProbes)
		}
		if rd.Timeouts != 0 {
			t.Errorf("servfail-storm round %d has timeouts: %+v (SERVFAIL is instant)", rd.Round, rd)
		}
	}

	// Flapping server + growing backoff: retries ride the accumulated
	// virtual latency forward through the schedule, so every round is
	// answered without stale, and down-phase rounds show the retry work.
	flapRetries := 0
	for _, rd := range byName["flap-backoff"].Rounds {
		flapRetries += rd.Retries
		if rd.Answered != chaosProbes || rd.Stale != 0 {
			t.Errorf("flap-backoff round %d: %+v, want fresh answers every round", rd.Round, rd)
		}
	}
	if flapRetries == 0 {
		t.Error("flap-backoff: no retries fired; the flap never bit")
	}
}

// TestChaosDeterministic proves the harness — and through it the fault
// schedule, the retry plane's jitter, and SRTT ordering — is byte-identical
// across worker counts and repeated runs.
func TestChaosDeterministic(t *testing.T) {
	serial := ChaosRun(chaosProbes, 1, chaosSeed).JSON()
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4, 8} {
			got := ChaosRun(chaosProbes, workers, chaosSeed).JSON()
			if !bytes.Equal(got, serial) {
				t.Fatalf("run %d with %d workers diverged from serial output", run, workers)
			}
		}
	}
}
