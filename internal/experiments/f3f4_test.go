package experiments

import (
	"strings"
	"testing"
)

func TestNlPassive(t *testing.T) {
	r := NlPassive(NlPassiveConfig{Resolvers: 200, Days: 2, Seed: 4})
	if r.Metric("rows_ingested") == 0 {
		t.Fatal("observed servers saw no NS-host queries")
	}
	if r.Metric("groups") < 50 {
		t.Fatalf("too few groups: %v", r.Metric("groups"))
	}
	// §3.4: ≈52 % of groups send more than one query over two days.
	f := r.Metric("frac_multi_query")
	if f < 0.3 || f > 0.75 {
		t.Errorf("multi-query fraction = %.3f, want ≈0.52", f)
	}
	// Some single-query groups belong to resolvers that are multi-query
	// for other names (the paper's 14 %).
	if r.Metric("frac_single_but_multi") <= 0 {
		t.Errorf("no single-but-multi-elsewhere resolvers found")
	}
	// Figure 4's bumps: a solid share of minimum interarrivals sits near
	// one-hour multiples (the 3600 s child TTL).
	if r.Metric("bump_mass_hour_multiples") < 0.2 {
		t.Errorf("bump mass at hour multiples = %.3f, want a visible bump",
			r.Metric("bump_mass_hour_multiples"))
	}
	for _, want := range []string{"Figure 3", "Figure 4", "census"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
