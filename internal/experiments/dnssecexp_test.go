package experiments

import "testing"

func TestValidationCentricity(t *testing.T) {
	r := ValidationCentricity(150, 21)
	plain := r.Metric("frac_parent_plain")
	validating := r.Metric("frac_parent_validating")
	if plain < 0.03 {
		t.Fatalf("plain mix should show a parent-centric share: %.3f", plain)
	}
	if validating > plain/2 {
		t.Errorf("validation should collapse the parent share: %.3f vs %.3f", validating, plain)
	}
	if r.Metric("frac_child_validating") < 0.95 {
		t.Errorf("validating population child share = %.3f, want ≈1", r.Metric("frac_child_validating"))
	}
}
