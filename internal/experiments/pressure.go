package experiments

import (
	"encoding/json"
	"fmt"
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
	"dnsttl/internal/workload"
	"dnsttl/internal/zone"
)

// The cache-pressure sweep extends the paper's hit-rate-vs-TTL analysis
// (§4, Tables 4–5) into the memory-bounded regime real resolvers operate
// in: when the cache cannot hold the working set, eviction — not TTL expiry
// — limits the hit rate, and the eviction policy decides how much of the
// paper's TTL effect survives. The grid crosses cache size (MaxBytes) ×
// record TTL × eviction policy under one Zipf/Poisson workload, plus
// refresh-ahead rows showing prefetch recovering hit rate at short TTLs.
//
// Every cell builds its own clock, network, zones, and resolver and replays
// the identical query stream, so cells are comparable point-for-point and
// the sweep is deterministic at any worker count. The JSON report is
// integer-only and golden-pinned in testdata/pressure_golden.json.

// PressureCell is one grid point's outcome. Counters are integers (hit rate
// is reported per-mille) so the JSON encoding is byte-stable.
type PressureCell struct {
	Policy           string `json:"policy"`
	MaxKB            int    `json:"max_kb"`
	TTL              int    `json:"ttl_s"`
	Prefetch         bool   `json:"prefetch"`
	Answered         int    `json:"answered"`
	Hits             int    `json:"hits"`
	HitPerMille      int    `json:"hit_per_mille"`
	Evictions        int    `json:"evictions"`
	AdmissionRejects int    `json:"admission_rejects"`
	Prefetches       int    `json:"prefetches"`
	AuthQueries      int    `json:"auth_queries"`
	FinalEntries     int    `json:"final_entries"`
	FinalBytes       int    `json:"final_bytes"`
}

// PressureReport is the sweep's full outcome, in grid order: sizes outer,
// TTLs middle, policies inner, refresh-ahead rows last.
type PressureReport struct {
	Seed    int            `json:"seed"`
	Queries int            `json:"queries_per_cell"`
	Names   int            `json:"names"`
	Cells   []PressureCell `json:"cells"`
}

// JSON renders the report as stable, indented JSON — the golden format.
func (r *PressureReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Cell finds a grid point by coordinates (nil if absent).
func (r *PressureReport) Cell(policy string, maxKB, ttl int, prefetch bool) *PressureCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Policy == policy && c.MaxKB == maxKB && c.TTL == ttl && c.Prefetch == prefetch {
			return c
		}
	}
	return nil
}

// The sweep grid. Sizes are chosen against the workload's ~1200-name
// working set (roughly 190 KB of A records at pressureNames): 32 KB holds
// ~15 % of it, 96 KB ~45 %, so eviction is the binding constraint
// everywhere while TTL expiry still matters at the short end.
var (
	pressureTTLs     = []uint32{30, 60, 300}
	pressureSizes    = []int64{32 << 10, 96 << 10}
	pressurePolicies = []cache.EvictionPolicy{cache.EvictFIFO, cache.EvictLRU, cache.EvictSLRU}
)

const (
	pressureNames = 1200
	pressureQPS   = 24.0
	// pressurePrefetchTTL is the TTL at which the refresh-ahead rows run —
	// short enough that expiry misses dominate without prefetch.
	pressurePrefetchTTL uint32 = 60
)

// pressureSpec is one grid point's configuration.
type pressureSpec struct {
	policy   cache.EvictionPolicy
	maxBytes int64
	ttl      uint32
	prefetch bool
}

func pressureSpecs() []pressureSpec {
	var specs []pressureSpec
	for _, size := range pressureSizes {
		for _, ttl := range pressureTTLs {
			for _, p := range pressurePolicies {
				specs = append(specs, pressureSpec{policy: p, maxBytes: size, ttl: ttl})
			}
		}
	}
	// Refresh-ahead rows: LRU at the short-TTL cell, where expiry misses
	// are the dominant loss and prefetch has the most to recover.
	for _, size := range pressureSizes {
		specs = append(specs, pressureSpec{
			policy: cache.EvictLRU, maxBytes: size, ttl: pressurePrefetchTTL, prefetch: true,
		})
	}
	return specs
}

// pressureWorld is one cell's testbed: clock, network, the two
// authoritative servers, and the workload generator. The model-validation
// probe (validate.go) builds the identical world to measure byte
// overheads, which is why construction is factored out of pressureCell.
type pressureWorld struct {
	clock           *simnet.VirtualClock
	net             *simnet.Network
	rootAddr        netip.Addr
	rootSrv, orgSrv *authoritative.Server
	gen             *workload.Generator
}

// pressureRecord is the workload A record for name j, as served by the
// zone — also what the model charges per cache entry (cache.EntryCharge
// of its wire size).
func pressureRecord(n dnswire.Name, j int, ttl uint32) dnswire.RR {
	return dnswire.RR{Name: n, Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: ttl, Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{198, 19, byte(j >> 8), byte(j)})}}
}

func newPressureWorld(ttl uint32, seed int64) *pressureWorld {
	w := &pressureWorld{
		clock:    simnet.NewVirtualClock(),
		net:      simnet.NewNetwork(seed),
		rootAddr: netip.MustParseAddr("192.88.31.1"),
	}
	orgAddr := netip.MustParseAddr("192.88.31.2")
	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, w.rootAddr.String()),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 172800, orgAddr.String()),
	)
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 86400, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, orgAddr.String()),
	)
	w.gen = workload.New(dnswire.NewName("example.org"), pressureNames, 1.0, pressureQPS, seed)
	for j, n := range w.gen.Names {
		org.MustAdd(pressureRecord(n, j, ttl))
	}
	w.rootSrv = authoritative.NewServer(dnswire.NewName("a.root-servers.net"), w.clock)
	w.rootSrv.AddZone(root)
	w.net.Attach(w.rootAddr, w.rootSrv)
	w.orgSrv = authoritative.NewServer(dnswire.NewName("ns1.example.org"), w.clock)
	w.orgSrv.AddZone(org)
	w.net.Attach(orgAddr, w.orgSrv)
	return w
}

// pressureCell replays the workload against one grid point. Every cell uses
// the same workload seed, so all cells face the identical query stream and
// differ only in cache configuration.
func pressureCell(spec pressureSpec, queries int, seed int64) PressureCell {
	w := newPressureWorld(spec.ttl, seed)
	clock, gen := w.clock, w.gen
	rootSrv, orgSrv := w.rootSrv, w.orgSrv

	pol := resolver.DefaultPolicy()
	if spec.prefetch {
		pol.Prefetch = true
		pol.PrefetchFraction = 0.5
	}
	res := resolver.New(netip.MustParseAddr("10.31.0.1"), pol,
		w.net, clock, []netip.Addr{w.rootAddr}, seed)
	ccfg := pol.CacheConfig()
	ccfg.MaxBytes = spec.maxBytes
	// An entry costs at least ~130 bytes here, so bytes bind well before
	// this count bound; it only sizes the SLRU segments and sketch.
	ccfg.Capacity = int(spec.maxBytes / 100)
	ccfg.Eviction = spec.policy
	res.Cache = cache.New(clock, ccfg)

	hits, answered := 0, 0
	for q := 0; q < queries; q++ {
		gap, name := gen.Next()
		clock.Advance(gap)
		out, err := res.Resolve(name, dnswire.TypeA)
		if err != nil || out.Msg.Header.RCode != dnswire.RCodeNoError {
			continue
		}
		answered++
		if out.CacheHit {
			hits++
		}
	}

	st := res.Cache.Stats()
	cell := PressureCell{
		Policy:           spec.policy.String(),
		MaxKB:            int(spec.maxBytes >> 10),
		TTL:              int(spec.ttl),
		Prefetch:         spec.prefetch,
		Answered:         answered,
		Hits:             hits,
		Evictions:        int(st.Evictions),
		AdmissionRejects: int(st.AdmissionRejects),
		Prefetches:       int(st.Prefetches),
		AuthQueries:      int(rootSrv.QueryCount() + orgSrv.QueryCount()),
		FinalEntries:     st.Entries,
		FinalBytes:       int(st.Bytes),
	}
	if answered > 0 {
		cell.HitPerMille = hits * 1000 / answered
	}
	return cell
}

// PressureRun sweeps the full grid, fanning cells across workers. The
// report is identical at any worker count: each cell builds its own world
// and no state crosses cells.
func PressureRun(queries, workers int, seed int64) *PressureReport {
	if queries <= 0 {
		queries = 4000
	}
	specs := pressureSpecs()
	cells := Sweep(len(specs), workers, func(i int) PressureCell {
		return pressureCell(specs[i], queries, seed)
	})
	return &PressureReport{
		Seed: int(seed), Queries: queries, Names: pressureNames, Cells: cells,
	}
}

// CachePressure wraps the sweep into the standard Report shape for the
// experiment runner ("cache-pressure").
func CachePressure(queries, workers int, seed int64) *Report {
	rep := PressureRun(queries, workers, seed)

	tbl := &stats.Table{
		Title: fmt.Sprintf("Hit rate under memory pressure (Zipf s=1, %d names, %.0f q/s, %s queries per cell)",
			rep.Names, pressureQPS, stats.FormatCount(rep.Queries)),
		Header: []string{"policy", "bound (KB)", "TTL (s)", "prefetch", "hit rate",
			"evictions", "adm. rejects", "prefetches", "auth queries", "final KB"},
	}
	m := map[string]float64{}
	for _, c := range rep.Cells {
		pf := ""
		key := fmt.Sprintf("hit_%s_%dkb_ttl%d", c.Policy, c.MaxKB, c.TTL)
		if c.Prefetch {
			pf = "yes"
			key = fmt.Sprintf("hit_%s_pf_%dkb_ttl%d", c.Policy, c.MaxKB, c.TTL)
		}
		tbl.AddRow(c.Policy, fmt.Sprintf("%d", c.MaxKB), fmt.Sprintf("%d", c.TTL), pf,
			fmt.Sprintf("%.3f", float64(c.HitPerMille)/1000),
			stats.FormatCount(c.Evictions), stats.FormatCount(c.AdmissionRejects),
			stats.FormatCount(c.Prefetches), stats.FormatCount(c.AuthQueries),
			fmt.Sprintf("%d", c.FinalBytes>>10))
		m[key] = float64(c.HitPerMille) / 1000
		m[key+"_auth_queries"] = float64(c.AuthQueries)
	}

	// Headline deltas: the worst-case LRU-over-FIFO margin across the grid,
	// and the refresh-ahead lift at the short-TTL cells.
	minLRUGain := 1.0
	for _, size := range pressureSizes {
		for _, ttl := range pressureTTLs {
			kb, t := int(size>>10), int(ttl)
			fifo := rep.Cell("fifo", kb, t, false)
			lru := rep.Cell("lru", kb, t, false)
			if fifo != nil && lru != nil {
				if gain := float64(lru.HitPerMille-fifo.HitPerMille) / 1000; gain < minLRUGain {
					minLRUGain = gain
				}
			}
		}
		kb := int(size >> 10)
		plain := rep.Cell("lru", kb, int(pressurePrefetchTTL), false)
		pf := rep.Cell("lru", kb, int(pressurePrefetchTTL), true)
		if plain != nil && pf != nil {
			m[fmt.Sprintf("prefetch_lift_%dkb_ttl%d", kb, pressurePrefetchTTL)] =
				float64(pf.HitPerMille-plain.HitPerMille) / 1000
		}
	}
	m["lru_over_fifo_min_gain"] = minLRUGain

	return &Report{
		ID:      "Cache pressure",
		Title:   "Under a byte bound, eviction policy sets the hit rate; LRU beats FIFO everywhere and refresh-ahead recovers short-TTL misses",
		Text:    tbl.String(),
		Metrics: m,
	}
}
