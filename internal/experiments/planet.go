package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/compile"
	"dnsttl/internal/stats"
)

// planet.go is the planet-scale experiment tier: populations far past
// what per-client simulation can carry (1M, 10M, 100M users), run
// through the workload compiler instead. Each (tier, TTL) cell lowers a
// population spec — population.DefaultMix × the atlas region skew ×
// the default diurnal curve — into per-(resolver-cohort, name-band)
// renewal lines and advances them a full simulated day by closed-form
// arithmetic. A chaos cell per tier adds a midday authoritative outage
// and an evening cache purge, exercising the engine's event-driven
// path where aggregation is unsound. The compiled model itself is held
// to the simulated planes by the validate.go harness (≤ 0.5 hit-points
// on the hitrate, fragmentation, and pressure experiments).

// planetPhases shifts each atlas region's diurnal curve to its rough
// local time (hours relative to the curve's reference day).
var planetPhases = map[string]int{
	"EU": 1, "NA": -6, "AS": 7, "AF": 2, "SA": -4, "OC": 10,
}

// planetRegions lowers the atlas region skew into compiler region
// shares.
func planetRegions() []compile.RegionShare {
	regions, shares := atlas.RegionShares()
	out := make([]compile.RegionShare, len(regions))
	for i, r := range regions {
		out[i] = compile.RegionShare{
			Name:       r.String(),
			Share:      shares[i],
			PhaseHours: planetPhases[r.String()],
		}
	}
	return out
}

// planetSpec is the tier's base population: a million-name Zipf universe
// through 50k-user ISP resolver cells with byte-bounded SLRU caches and
// mild refresh-ahead. The 1 MB per-cell bound sits between the steady
// fresh footprint at TTL 30 (~0.2 MB, pressure-free) and at TTL 3600
// (~16 MB, heavy eviction), so the tier shows the TTL × pressure
// interaction rather than an unbounded cache in disguise.
func planetSpec(users float64, ttl uint32) compile.Spec {
	return compile.Spec{
		Users:             users,
		QueriesPerUserDay: 120,
		Regions:           planetRegions(),
		Names:             1_000_000,
		ZipfS:             1.0,
		TTL:               ttl,
		MaxBytes:          1 << 20,
		BaseBytes:         64 << 10,
		Policy:            "slru",
		PrefetchFrac:      0.1,
		Hours:             24,
	}
}

// planetTiers are the modeled populations.
var planetTiers = []struct {
	Label string
	Users float64
}{
	{"1m", 1e6}, {"10m", 1e7}, {"100m", 1e8},
}

// planetTTLs spans the paper's short/medium/long regimes.
var planetTTLs = []uint32{30, 300, 3600}

// PlanetScale runs the compiled tier: one simulated day per (population,
// TTL) cell plus a chaos cell per tier (outage 12:00–14:00, purge at
// 18:00). Everything is closed-form and deterministic — no seed. The
// report's throughput metric is the compiler's reason to exist:
// simulated user-seconds delivered per wall-clock second.
func PlanetScale() *Report {
	tbl := &stats.Table{
		Title: "Planet-scale compiled tier: one day, DefaultMix × atlas regions",
		Header: []string{"users", "ttl", "hit_rate", "amplification",
			"peak_upstream_qps", "evictions", "prefetches", "failed", "lines"},
	}
	m := map[string]float64{}
	start := time.Now()
	userSeconds := 0.0
	for _, tier := range planetTiers {
		for _, ttl := range planetTTLs {
			spec := planetSpec(tier.Users, ttl)
			res, err := compile.CompileAndRun(spec)
			if err != nil {
				panic(err) // static specs; any error is a programming bug
			}
			userSeconds += res.Users * res.VirtualSeconds
			key := fmt.Sprintf("%s_ttl%d", tier.Label, ttl)
			m["hit_"+key] = res.HitRate()
			m["amp_"+key] = res.Amplification()
			m["peak_qps_"+key] = res.PeakUpstreamQPS
			tbl.AddRow(tier.Label, fmt.Sprintf("%d", ttl),
				fmt.Sprintf("%.4f", res.HitRate()),
				fmt.Sprintf("%.4f", res.Amplification()),
				fmt.Sprintf("%.0f", res.PeakUpstreamQPS),
				fmt.Sprintf("%.0f", res.Evictions),
				fmt.Sprintf("%.0f", res.Prefetches),
				fmt.Sprintf("%.0f", res.Failed),
				fmt.Sprintf("%d", res.Lines))
		}
		// Chaos cell: the event-driven path. A 2h authoritative outage at
		// noon (hits drain the decaying caches, misses fail) and a full
		// cache purge at 18:00.
		spec := planetSpec(tier.Users, 300)
		spec.Events = []compile.Event{
			{AtHours: 12, Kind: "outage", DurHours: 2},
			{AtHours: 18, Kind: "purge"},
		}
		res, err := compile.CompileAndRun(spec)
		if err != nil {
			panic(err)
		}
		userSeconds += res.Users * res.VirtualSeconds
		m["hit_"+tier.Label+"_chaos"] = res.HitRate()
		m["failed_"+tier.Label+"_chaos"] = res.Failed
		tbl.AddRow(tier.Label, "300*",
			fmt.Sprintf("%.4f", res.HitRate()),
			fmt.Sprintf("%.4f", res.Amplification()),
			fmt.Sprintf("%.0f", res.PeakUpstreamQPS),
			fmt.Sprintf("%.0f", res.Evictions),
			fmt.Sprintf("%.0f", res.Prefetches),
			fmt.Sprintf("%.0f", res.Failed),
			fmt.Sprintf("%d", res.Lines))
	}
	wall := time.Since(start).Seconds()
	m["wall_seconds"] = wall
	if wall > 0 {
		// Simulated user-seconds per wall-second: the engine's headline.
		m["throughput_user_seconds_per_wall_second"] = userSeconds / wall
	}
	return &Report{
		ID:    "Planet-scale tier",
		Title: "Compiled aggregate arrival-process engine at 1M/10M/100M users",
		Text: tbl.String() + "\n(ttl 300* = chaos cell: 2h outage at 12:00, purge at 18:00; " +
			fmt.Sprintf("total wall %.2fs)", wall),
		Metrics: m,
	}
}
