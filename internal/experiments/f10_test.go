package experiments

import "testing"

func TestFigure10(t *testing.T) {
	r := Figure10(200, 8)
	mb, ma := r.Metric("median_ms_before"), r.Metric("median_ms_after")
	if ma >= mb {
		t.Fatalf("median after (%.1f) must beat before (%.1f)", ma, mb)
	}
	// The paper's factor: 28.7 → 8 ms, roughly 3.5×. Require ≥2×.
	if mb/ma < 2 {
		t.Errorf("median improvement = %.2fx, want ≥2x (paper ≈3.6x)", mb/ma)
	}
	// Tails shrink too (183→21 at p75, 450→200 at p95).
	if r.Metric("p75_ms_after") >= r.Metric("p75_ms_before") {
		t.Errorf("p75 did not improve: %.1f → %.1f", r.Metric("p75_ms_before"), r.Metric("p75_ms_after"))
	}
	if r.Metric("p95_ms_after") >= r.Metric("p95_ms_before") {
		t.Errorf("p95 did not improve")
	}
	// Figure 10b: every measured region improves.
	if r.Metric("regions_improved") != r.Metric("regions_measured") {
		t.Errorf("regions improved %v of %v", r.Metric("regions_improved"), r.Metric("regions_measured"))
	}
	if r.Metric("regions_measured") < 4 {
		t.Errorf("too few regions measured: %v", r.Metric("regions_measured"))
	}
}

func TestTable10Figure11(t *testing.T) {
	r := Table10Figure11(150, 9)

	m60u := r.Metric("median_ms_TTL60-u")
	m86u := r.Metric("median_ms_TTL86400-u")
	m60s := r.Metric("median_ms_TTL60-s")
	m86s := r.Metric("median_ms_TTL86400-s")
	mAny := r.Metric("median_ms_TTL60-s-anycast")

	// Paper: 49.28 vs 9.68 (unique), 35.59 vs 7.38 (shared), anycast 29.95.
	if m86u >= m60u/2 {
		t.Errorf("unique: TTL86400 median %.1f should be ≪ TTL60 median %.1f", m86u, m60u)
	}
	if m86s >= m60s/2 {
		t.Errorf("shared: TTL86400 median %.1f should be ≪ TTL60 median %.1f", m86s, m60s)
	}
	// Caching beats anycast at the median (§6.2's headline).
	if m86s >= mAny {
		t.Errorf("caching (%.1f ms) must beat anycast (%.1f ms) at the median", m86s, mAny)
	}
	// Anycast helps the tail relative to short-TTL unicast.
	if r.Metric("p95_ms_TTL60-s-anycast") >= r.Metric("p95_ms_TTL60-s") {
		t.Errorf("anycast p95 %.1f should beat unicast p95 %.1f",
			r.Metric("p95_ms_TTL60-s-anycast"), r.Metric("p95_ms_TTL60-s"))
	}

	// Load reduction ≈77 % (paper: 127k→43k unique, 92k→20k shared).
	if f := r.Metric("load_reduction_unique"); f < 0.5 || f > 0.95 {
		t.Errorf("unique load reduction = %.2f, want ≈0.66-0.85", f)
	}
	if f := r.Metric("load_reduction_shared"); f < 0.5 || f > 0.99 {
		t.Errorf("shared load reduction = %.2f, want ≈0.78+", f)
	}
	if r.Metric("auth_queries_TTL60-u") == 0 {
		t.Fatalf("no authoritative queries recorded")
	}
}
