package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// CentricityConfig parameterizes one §3.2/§3.3-style centricity campaign.
type CentricityConfig struct {
	ID, Title string
	// Name and Type are the probed question.
	Name dnswire.Name
	Type dnswire.Type
	// ParentTTL and ChildTTL are the two ground-truth values whose
	// competition the experiment measures.
	ParentTTL, ChildTTL uint32
	// Probes and Rounds size the campaign (the paper: ~9k probes,
	// 600 s × 2-3 h).
	Probes, Rounds int
	Seed           int64
}

// runCentricity probes (Name, Type) from a default-mix fleet and classifies
// every answered TTL against the parent/child ground truth.
func runCentricity(tb *Testbed, cfg CentricityConfig) *Report {
	fleet := tb.Fleet(cfg.Probes, nil, cfg.Seed)
	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name: cfg.Name, Type: cfg.Type,
		Interval: 600 * time.Second,
		Rounds:   cfg.Rounds,
		Jitter:   true,
	})

	ttls := stats.NewSample()
	valid, discarded := 0, 0
	childish, parentish, fullParent, overParent := 0, 0, 0, 0
	for _, r := range resps {
		if !r.Valid() || r.TTL == 0 {
			discarded++
			continue
		}
		valid++
		ttls.Add(float64(r.TTL))
		switch {
		case r.TTL <= cfg.ChildTTL:
			childish++
		case r.TTL == cfg.ParentTTL:
			fullParent++
			parentish++
		case r.TTL > cfg.ParentTTL:
			overParent++
		default:
			parentish++
		}
	}
	fChild := frac(childish, valid)
	fParent := frac(parentish, valid) // includes answers at the full parent TTL
	fFull := frac(fullParent, valid)

	fig := stats.RenderCDF(
		fmt.Sprintf("%s: answered TTLs for %s %s (child=%d s, parent=%d s)",
			cfg.ID, cfg.Name, cfg.Type, cfg.ChildTTL, cfg.ParentTTL),
		"TTL (s)", map[string]*stats.Sample{"observed TTL": ttls}, 64, true)

	tbl := &stats.Table{
		Title:  "Campaign summary (cf. Table 2)",
		Header: []string{"quantity", "value"},
	}
	tbl.AddRow("probes", stats.FormatCount(cfg.Probes))
	tbl.AddRow("VPs", stats.FormatCount(len(fleet.VPs)))
	tbl.AddRow("responses (valid)", stats.FormatCount(valid))
	tbl.AddRow("responses (disc.)", stats.FormatCount(discarded))
	tbl.AddRow("child-centric answers (TTL<=child)", fmt.Sprintf("%.1f%%", 100*fChild))
	tbl.AddRow("parent-centric answers", fmt.Sprintf("%.1f%%", 100*fParent))
	tbl.AddRow("full parent TTL", fmt.Sprintf("%.1f%%", 100*fFull))

	rep := &Report{
		ID:    cfg.ID,
		Title: cfg.Title,
		Text:  tbl.String() + "\n" + fig,
		Metrics: map[string]float64{
			"frac_child_centric": fChild,
			"frac_parent_ttl":    fParent,
			"frac_full_parent":   fFull,
			"frac_over_parent":   frac(overParent, valid),
			"valid_responses":    float64(valid),
			"vps":                float64(len(fleet.VPs)),
			"median_ttl":         ttls.Median(),
		},
	}
	rep.AddSeries("observed_ttl_s", ttls)
	return rep
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Figure1UyNS is the .uy-NS experiment: child 300 s vs parent 172800 s;
// ~90 % of answers follow the child.
func Figure1UyNS(probes int, seed int64) *Report {
	tb := NewTestbed(seed)
	return runCentricity(tb, CentricityConfig{
		ID: "Figure 1a", Title: "Resolver centricity for .uy NS (child 300 s vs parent 172800 s)",
		Name: dnswire.NewName("uy"), Type: dnswire.TypeNS,
		ParentTTL: 172800, ChildTTL: 300,
		Probes: probes, Rounds: 12, Seed: seed,
	})
}

// Figure1UyA is the a.nic.uy-A experiment: child 120 s vs parent 172800 s.
func Figure1UyA(probes int, seed int64) *Report {
	tb := NewTestbed(seed)
	return runCentricity(tb, CentricityConfig{
		ID: "Figure 1b", Title: "Resolver centricity for a.nic.uy A (child 120 s vs parent 172800 s)",
		Name: dnswire.NewName("a.nic.uy"), Type: dnswire.TypeA,
		ParentTTL: 172800, ChildTTL: 120,
		Probes: probes, Rounds: 18, Seed: seed,
	})
}

// Figure2GoogleCo is the SLD experiment (§3.3): google.co NS, child 345600
// vs parent 900 — here "child-centric" answers are the ones *above* the
// parent TTL, and Google-style caps surface at 21599 s.
func Figure2GoogleCo(probes int, seed int64) *Report {
	tb := NewTestbed(seed)
	fleet := tb.Fleet(probes, nil, seed)
	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name: dnswire.NewName("google.co"), Type: dnswire.TypeNS,
		Interval: 600 * time.Second, Rounds: 6, Jitter: true,
	})

	ttls := stats.NewSample()
	valid := 0
	overParent, exactParent, capped := 0, 0, 0
	for _, r := range resps {
		if !r.Valid() || r.TTL == 0 {
			continue
		}
		valid++
		ttls.Add(float64(r.TTL))
		switch {
		case r.TTL == 21599:
			capped++
			overParent++
		case r.TTL > 900:
			overParent++
		case r.TTL == 900:
			exactParent++
		}
	}
	fig := stats.RenderCDF("Figure 2: answered TTLs for google.co NS (parent 900 s, child 345600 s)",
		"TTL (s)", map[string]*stats.Sample{"observed TTL": ttls}, 64, true)
	rep := &Report{
		ID:    "Figure 2",
		Title: "SLD centricity: google.co NS answers",
		Text:  fig,
		Metrics: map[string]float64{
			"frac_over_parent":  frac(overParent, valid),
			"frac_capped_21599": frac(capped, valid),
			"frac_exact_parent": frac(exactParent, valid),
			"valid_responses":   float64(valid),
		},
	}
	rep.AddSeries("observed_ttl_s", ttls)
	return rep
}
