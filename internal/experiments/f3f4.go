package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/entrada"
	"dnsttl/internal/latency"
	"dnsttl/internal/population"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
	"dnsttl/internal/zone"
)

// NlPassiveConfig sizes the §3.4 passive experiment: a .nl-like TLD with
// four authoritative servers (two of which we observe), a resolver
// population with heterogeneous client demand, and a two-day window.
type NlPassiveConfig struct {
	Resolvers int
	Days      int
	Seed      int64
}

// nlServers is the number of authoritative servers; the paper observed two
// of four.
const nlServers = 4

// NlPassive runs the experiment and produces Figures 3 and 4 plus the
// centricity census of §3.4.
func NlPassive(cfg NlPassiveConfig) *Report {
	if cfg.Resolvers <= 0 {
		cfg.Resolvers = 300
	}
	if cfg.Days <= 0 {
		cfg.Days = 2
	}
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(cfg.Seed)
	topo := latency.NewTopology()
	net.LatencyFor = topo.LatencyFor
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Root and the .nl infrastructure. The root glue for the ns[1-4]
	// addresses says 172800 s; the .nl zone's own copies say 3600 s —
	// exactly the §3.4 divergence.
	rootAddr := netip.MustParseAddr("192.88.10.1")
	topo.PlaceAnycast(rootAddr, latency.Route53Like())
	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1800, 900, 604800, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, rootAddr.String()),
	)

	nl := zone.New(dnswire.NewName("nl"))
	nl.MustAdd(dnswire.NewSOA("nl", 3600, "ns1.dns.nl", "hostmaster.sidn.nl", 1, 1800, 900, 604800, 3600))
	var nlAddrs []netip.Addr
	nsNames := make([]dnswire.Name, nlServers)
	for i := 0; i < nlServers; i++ {
		addr := netip.MustParseAddr(fmt.Sprintf("192.88.11.%d", i+1))
		topo.Place(addr, latency.EU)
		nlAddrs = append(nlAddrs, addr)
		host := dnswire.NewName(fmt.Sprintf("ns%d.dns.nl", i+1))
		nsNames[i] = host
		root.MustAdd(
			dnswire.NewNS("nl", 172800, string(host)),
			dnswire.NewA(string(host), 172800, addr.String()), // parent glue: 2 days
		)
		nl.MustAdd(
			dnswire.NewNS("nl", 3600, string(host)),
			dnswire.NewA(string(host), 3600, addr.String()), // child copy: 1 hour
		)
	}
	// Client-visible content: a pool of .nl names with web-scale TTLs.
	for i := 0; i < 400; i++ {
		nl.MustAdd(dnswire.NewA(fmt.Sprintf("d%04d.nl", i), 300+uint32(rng.Intn(4))*300,
			fmt.Sprintf("100.80.%d.%d", i/250, i%250+1)))
	}

	rootSrv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), clock)
	rootSrv.AddZone(root)
	net.Attach(rootAddr, rootSrv)
	nlSrvs := make([]*authoritative.Server, nlServers)
	for i, addr := range nlAddrs {
		s := authoritative.NewServer(nsNames[i], clock)
		s.AddZone(nl)
		s.EnableQueryLog()
		net.Attach(addr, s)
		nlSrvs[i] = s
	}

	// Resolver population: mainstream child-centric software with glue
	// revalidation dominates; demand per resolver is heavy-tailed.
	builder := &population.Builder{Net: net, Clock: clock, RootHints: []netip.Addr{rootAddr}, LocalRootZone: root}
	mix := population.DefaultMix()
	type client struct {
		res  *resolver.Resolver
		next time.Time
		gap  time.Duration
		left int // remaining queries (-1 = unbounded)
	}
	clients := make([]*client, cfg.Resolvers)
	for i := range clients {
		p := mix.Pick(rng)
		addr := netip.AddrFrom4([4]byte{172, 20, byte(i >> 8), byte(i)})
		topo.Place(addr, latency.EU)
		c := &client{res: builder.Build(p, addr, rng.Int63())}
		switch x := rng.Float64(); {
		case x < 0.35: // heavy: continuous demand
			c.gap = time.Duration(5+rng.Intn(25)) * time.Minute
			c.left = -1
		case x < 0.60: // medium: every few hours
			c.gap = time.Duration(2+rng.Intn(5)) * time.Hour
			c.left = -1
		default: // sparse: one or two lookups over the window
			c.gap = time.Duration(8+rng.Intn(30)) * time.Hour
			c.left = 1 + rng.Intn(2)
		}
		c.next = clock.Now().Add(time.Duration(rng.Int63n(int64(c.gap))))
		clients[i] = c
	}

	// Event loop over the window.
	end := clock.Now().Add(time.Duration(cfg.Days) * 24 * time.Hour)
	for {
		// Find the earliest pending client.
		var nextC *client
		for _, c := range clients {
			if c.left == 0 {
				continue
			}
			if nextC == nil || c.next.Before(nextC.next) {
				nextC = c
			}
		}
		if nextC == nil || nextC.next.After(end) {
			break
		}
		clock.Set(nextC.next)
		name := dnswire.NewName(fmt.Sprintf("d%04d.nl", rng.Intn(400)))
		_, _ = nextC.res.Resolve(name, dnswire.TypeA)
		if nextC.left > 0 {
			nextC.left--
		}
		nextC.next = nextC.next.Add(nextC.gap + time.Duration(rng.Int63n(int64(time.Minute))))
	}

	// ENTRADA view: ingest the two observed servers' logs, keeping only
	// the four NS-host names.
	names := map[dnswire.Name]bool{}
	for _, n := range nsNames {
		names[n] = true
	}
	wh := entrada.NewWarehouse()
	wh.IngestServerLog(nlSrvs[0], names)
	wh.IngestServerLog(nlSrvs[2], names)

	census := wh.CentricityCensus()
	counts := wh.QueryCountSample(0)
	filtered := wh.QueryCountSample(2 * time.Second)
	minGaps := wh.MinInterarrivalSample(2 * time.Second)

	fig3 := stats.RenderCDF("Figure 3: queries per (resolver, qname) group over the window",
		"queries", map[string]*stats.Sample{"all": counts, "filtered >=2s": filtered}, 60, true)
	fig4 := stats.RenderCDF("Figure 4: minimum interarrival per multi-query group",
		"seconds", map[string]*stats.Sample{"min interarrival": minGaps}, 60, true)

	// Bump detection: mass of minimum interarrivals within ±5 min of
	// one-hour multiples (the child TTL).
	bumpMass := 0.0
	if minGaps.Len() > 0 {
		for h := 1; h <= 8; h++ {
			lo := float64(h*3600 - 300)
			hi := float64(h*3600 + 300)
			bumpMass += minGaps.FractionAtMost(hi) - minGaps.FractionAtMost(lo)
		}
	}

	hourHist := minGaps.Histogram([]float64{0, 1800, 3900, 7500, 11100, 14700, 86400})
	var histRows []string
	labels := []string{"<30m", "30m-65m", "65m-2h05", "2h05-3h05", "3h05-4h05", ">4h05"}
	for i, label := range labels {
		if i < len(hourHist) {
			histRows = append(histRows, fmt.Sprintf("  %-10s %6d", label, hourHist[i]))
		}
	}

	tbl := &stats.Table{Title: "§3.4 centricity census (observed at 2 of 4 servers)",
		Header: []string{"quantity", "value"}}
	tbl.AddRow("groups (resolver, qname)", stats.FormatCount(census.Groups))
	tbl.AddRow("unique resolvers", stats.FormatCount(census.UniqueResolvers))
	tbl.AddRow("multi-query groups", fmt.Sprintf("%s (%.1f%%)", stats.FormatCount(census.MultiQuery), 100*census.FractionMultiQuery()))
	tbl.AddRow("single-query groups", stats.FormatCount(census.SingleQuery))
	tbl.AddRow("single but multi elsewhere", stats.FormatCount(census.SingleButMultiElsewhere))

	text := tbl.String() + "\n" + fig3 + "\n" + fig4 + "\nmin-interarrival histogram:\n"
	for _, row := range histRows {
		text += row + "\n"
	}

	rep := &Report{
		ID:    "Figures 3-4",
		Title: "Passive .nl analysis: per-resolver query counts and interarrivals",
		Text:  text,
		Metrics: map[string]float64{
			"frac_multi_query":         census.FractionMultiQuery(),
			"groups":                   float64(census.Groups),
			"unique_resolvers":         float64(census.UniqueResolvers),
			"frac_single_but_multi":    frac(census.SingleButMultiElsewhere, census.SingleQuery),
			"bump_mass_hour_multiples": bumpMass,
			"rows_ingested":            float64(wh.Rows()),
		},
	}
	rep.AddSeries("queries_per_group", counts)
	rep.AddSeries("queries_per_group_filtered", filtered)
	rep.AddSeries("min_interarrival_s", minGaps)
	return rep
}
