package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// table2Campaign is one column of the paper's Table 2.
type table2Campaign struct {
	Label     string
	Name      dnswire.Name
	Type      dnswire.Type
	ParentTTL uint32
	ChildTTL  uint32
	Hours     int
	// NewUyTTL, when nonzero, raises the .uy child NS TTL first (the
	// uy-NS-new column, after the operator's change).
	NewUyTTL uint32
}

var table2Campaigns = []table2Campaign{
	{Label: ".uy-NS", Name: dnswire.NewName("uy"), Type: dnswire.TypeNS,
		ParentTTL: 172800, ChildTTL: 300, Hours: 2},
	{Label: "a.nic.uy-A", Name: dnswire.NewName("a.nic.uy"), Type: dnswire.TypeA,
		ParentTTL: 172800, ChildTTL: 120, Hours: 3},
	{Label: "google.co-NS", Name: dnswire.NewName("google.co"), Type: dnswire.TypeNS,
		ParentTTL: 900, ChildTTL: 345600, Hours: 1},
	{Label: ".uy-NS-new", Name: dnswire.NewName("uy"), Type: dnswire.TypeNS,
		ParentTTL: 172800, ChildTTL: 86400, Hours: 2, NewUyTTL: 86400},
}

// Table2 reruns the four centricity campaigns and reports their metadata
// and outcome counts in the paper's Table 2 layout.
func Table2(probes int, seed int64) *Report {
	type colResult struct {
		c                  table2Campaign
		vps                int
		queries, responses int
		valid, disc        int
	}
	var cols []colResult
	for i, c := range table2Campaigns {
		tb := NewTestbed(seed + int64(i))
		if c.NewUyTTL != 0 {
			if !tb.Uy.SetTTL(dnswire.NewName("uy"), dnswire.TypeNS, c.NewUyTTL) {
				panic("uy NS set missing")
			}
		}
		fleet := tb.Fleet(probes, nil, seed+int64(i))
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: c.Name, Type: c.Type,
			Interval: 600 * time.Second,
			Rounds:   c.Hours * 6,
			Jitter:   true,
		})
		col := colResult{c: c, vps: len(fleet.VPs)}
		for _, r := range resps {
			col.queries++
			col.responses++
			if r.Valid() && r.TTL > 0 {
				col.valid++
			} else {
				col.disc++
			}
		}
		cols = append(cols, col)
	}

	tbl := &stats.Table{Title: "Table 2: resolver-centricity experiments",
		Header: []string{"", ".uy-NS", "a.nic.uy-A", "google.co-NS", ".uy-NS-new"}}
	row := func(name string, f func(colResult) string) {
		cells := []string{name}
		for _, col := range cols {
			cells = append(cells, f(col))
		}
		tbl.AddRow(cells...)
	}
	row("Frequency", func(colResult) string { return "600s" })
	row("Duration", func(c colResult) string { return fmt.Sprintf("%dh", c.c.Hours) })
	row("Query", func(c colResult) string { return fmt.Sprintf("%s %s", c.c.Type, c.c.Name) })
	row("TTL Parent", func(c colResult) string { return fmt.Sprintf("%d s", c.c.ParentTTL) })
	row("TTL Child", func(c colResult) string { return fmt.Sprintf("%d s", c.c.ChildTTL) })
	row("VPs", func(c colResult) string { return stats.FormatCount(c.vps) })
	row("Queries", func(c colResult) string { return stats.FormatCount(c.queries) })
	row("Responses", func(c colResult) string { return stats.FormatCount(c.responses) })
	row("  valid", func(c colResult) string { return stats.FormatCount(c.valid) })
	row("  disc.", func(c colResult) string { return stats.FormatCount(c.disc) })

	m := map[string]float64{}
	for _, col := range cols {
		m["valid_"+col.c.Label] = float64(col.valid)
		m["vps_"+col.c.Label] = float64(col.vps)
		m["valid_ratio_"+col.c.Label] = frac(col.valid, col.responses)
	}
	return &Report{
		ID:      "Table 2",
		Title:   "Centricity campaign metadata and response counts",
		Text:    tbl.String(),
		Metrics: m,
	}
}
