package experiments

import "testing"

func TestAblationGlueCoupling(t *testing.T) {
	r := AblationGlueCoupling(80, 11)
	on := r.Metric("coupled_frac_new_after_ns_expiry")
	off := r.Metric("decoupled_frac_new_after_ns_expiry")
	if on < 0.9 {
		t.Errorf("coupled resolvers should switch at NS expiry: %.2f", on)
	}
	if off > 0.1 {
		t.Errorf("decoupled resolvers must hold the old A through NS expiry: %.2f", off)
	}
	if late := r.Metric("decoupled_frac_new_after_a_expiry"); late < 0.9 {
		t.Errorf("decoupled resolvers must switch once the A expires: %.2f", late)
	}
}

func TestAblationServeStale(t *testing.T) {
	r := AblationServeStale(80, 12)
	on := r.Metric("valid_frac_serve_stale")
	off := r.Metric("valid_frac_strict")
	if on < 0.8 {
		t.Errorf("serve-stale availability during outage = %.2f, want high", on)
	}
	if off > 0.2 {
		t.Errorf("strict-TTL availability during outage = %.2f, want ≈0", off)
	}
	if r.Metric("stale_answers") == 0 {
		t.Errorf("no stale answers recorded")
	}
}

func TestAblationPrefetch(t *testing.T) {
	r := AblationPrefetch(60, 13)
	if r.Metric("hit_frac_prefetch") <= r.Metric("hit_frac_plain") {
		t.Errorf("prefetch should raise hit rate: %.2f vs %.2f",
			r.Metric("hit_frac_prefetch"), r.Metric("hit_frac_plain"))
	}
	if r.Metric("auth_queries_prefetch") <= r.Metric("auth_queries_plain") {
		t.Errorf("prefetch should cost authoritative queries: %v vs %v",
			r.Metric("auth_queries_prefetch"), r.Metric("auth_queries_plain"))
	}
}

func TestAblationCapStyle(t *testing.T) {
	r := AblationCapStyle(14)
	serve := r.Metric("at_cap_frac_serve")
	store := r.Metric("at_cap_frac_store")
	if serve < 0.95 {
		t.Errorf("serve-time cap should pin every answer at 21599: %.2f", serve)
	}
	if store >= serve {
		t.Errorf("storage cap should show decayed values: store %.2f vs serve %.2f", store, serve)
	}
}
