package experiments

import (
	"reflect"
	"testing"
)

// TestFarmFragmentationFindings asserts the paper-shaped findings of the
// farm sweep, not exact counts: private caches multiply authoritative load
// with the frontend count (≈ linearly for the hottest name), shared and
// sharded topologies keep it flat, and the fleet hit rate collapses only
// under fragmentation.
func TestFarmFragmentationFindings(t *testing.T) {
	r := FarmFragmentation(3000, 0, 42)

	// Private caches: authoritative volume rises monotonically in the
	// frontend count at the short TTL, and clearly overall (≥ 2.5×
	// between 1 and 16 frontends).
	if !(r.Metric("auth_private_f1_ttl60") < r.Metric("auth_private_f4_ttl60") &&
		r.Metric("auth_private_f4_ttl60") < r.Metric("auth_private_f16_ttl60")) {
		t.Errorf("private auth volume not monotone in farm size: f1=%v f4=%v f16=%v",
			r.Metric("auth_private_f1_ttl60"), r.Metric("auth_private_f4_ttl60"),
			r.Metric("auth_private_f16_ttl60"))
	}
	if g := r.Metric("growth_private_ttl60"); g < 2.5 {
		t.Errorf("private growth at ttl60 = %.2f, want ≥ 2.5", g)
	}
	// For the most popular name the multiplier approaches the frontend
	// count: ~linear growth (ideal 16 for 16 frontends).
	if hg := r.Metric("hot_growth_private_ttl60"); hg < 8 {
		t.Errorf("hot-name private growth = %.2f, want ≥ 8 (~linear in 16 frontends)", hg)
	}

	// Shared and sharded caches: flat in farm size.
	for _, k := range []string{"growth_shared_ttl60", "growth_sharded_ttl60",
		"growth_shared_ttl3600", "growth_sharded_ttl3600"} {
		if g := r.Metric(k); g > 1.1 || g < 0.9 {
			t.Errorf("%s = %.3f, want ~1.0 (flat)", k, g)
		}
	}

	// Fragmentation is what costs hit rate: the shared fleet at 16
	// frontends matches the single resolver, the private fleet loses ≥ 20
	// points against it at the short TTL.
	single := r.Metric("hit_shared_f1_ttl60")
	if d := r.Metric("hit_shared_f16_ttl60") - single; d < -0.02 || d > 0.02 {
		t.Errorf("shared f16 hit rate drifted %.3f from single-resolver", d)
	}
	if d := single - r.Metric("hit_private_f16_ttl60"); d < 0.2 {
		t.Errorf("private f16 hit rate only %.3f below single-resolver, want ≥ 0.2", d)
	}

	// Short TTLs are what make fragmentation expensive in absolute load.
	if r.Metric("auth_private_f16_ttl60") <= r.Metric("auth_private_f16_ttl3600") {
		t.Errorf("short-TTL private farm should cost more authoritative queries than long-TTL: %v vs %v",
			r.Metric("auth_private_f16_ttl60"), r.Metric("auth_private_f16_ttl3600"))
	}
}

// TestFarmFragmentationDeterministic: same seed, identical report.
func TestFarmFragmentationDeterministic(t *testing.T) {
	a := FarmFragmentation(1500, 1, 7)
	b := FarmFragmentation(1500, 4, 7)
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ between identical runs")
	}
	if a.Text != b.Text {
		t.Errorf("rendered text differs between identical runs")
	}
}
