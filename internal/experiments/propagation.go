package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// PropagationSweep quantifies §6.1's agility claim: "since there is no
// method to remove cached DNS records, the TTL duration represents a
// necessary transition delay". The operator changes a service address at a
// fixed time; we measure, per TTL, how long until (nearly) every client
// sees the new one.
// Each TTL point is an independent sweep cell fanned across workers.
func PropagationSweep(probes, workers int, seed int64) *Report {
	ttls := []uint32{60, 600, 1800, 3600}
	const (
		interval    = 60 * time.Second
		rounds      = 75 // 75 minutes
		changeRound = 5
	)
	name := dnswire.NewName("www.cachetest.net")
	oldAddr, newAddr := "192.88.99.80", "198.51.100.99"

	run := func(ttl uint32) (lagRounds int, tail float64) {
		tb := NewTestbed(seed)
		if !tb.Ct.SetTTL(name, dnswire.TypeA, ttl) {
			panic("missing record")
		}
		fleet := tb.Fleet(probes, nil, seed)
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: name, Type: dnswire.TypeA,
			Interval: interval, Rounds: rounds, Jitter: true,
			OnRound: func(r int) {
				if r == changeRound {
					if err := tb.Ct.Replace(name, dnswire.TypeA,
						dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
							TTL: ttl, Data: mustA99(newAddr)}); err != nil {
						panic(err)
					}
				}
			},
		})
		// Per-round share of answers still carrying the old address.
		oldPerRound := make([]int, rounds)
		totPerRound := make([]int, rounds)
		for _, r := range resps {
			if !r.Valid() {
				continue
			}
			totPerRound[r.Round]++
			if r.Answer == oldAddr {
				oldPerRound[r.Round]++
			}
		}
		lag := rounds - changeRound // pessimistic default
		for r := changeRound; r < rounds; r++ {
			if totPerRound[r] == 0 {
				continue
			}
			if frac(oldPerRound[r], totPerRound[r]) <= 0.01 {
				lag = r - changeRound
				break
			}
		}
		lastOld := 0.0
		if totPerRound[rounds-1] > 0 {
			lastOld = frac(oldPerRound[rounds-1], totPerRound[rounds-1])
		}
		return lag, lastOld
	}

	type point struct {
		lag  int
		tail float64
	}
	pts := Sweep(len(ttls), workers, func(i int) point {
		lag, tail := run(ttls[i])
		return point{lag: lag, tail: tail}
	})

	tbl := &stats.Table{
		Title:  "Renumbering propagation: minutes until <=1% of answers carry the old address",
		Header: []string{"TTL (s)", "propagation (min)", "old share at t=75min"},
	}
	m := map[string]float64{}
	for i, ttl := range ttls {
		lag, tail := pts[i].lag, pts[i].tail
		tbl.AddRow(fmt.Sprintf("%d", ttl), fmt.Sprintf("%d", lag), fmt.Sprintf("%.1f%%", 100*tail))
		m[fmt.Sprintf("lag_min_ttl_%d", ttl)] = float64(lag)
		m[fmt.Sprintf("tail_old_ttl_%d", ttl)] = tail
	}
	return &Report{
		ID:      "§6.1 propagation",
		Title:   "The TTL is the transition delay: renumbering propagates in ≈TTL",
		Text:    tbl.String(),
		Metrics: m,
	}
}

func mustA99(s string) dnswire.A {
	return dnswire.NewA("x.example", 1, s).Data.(dnswire.A)
}
