package experiments

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
	"dnsttl/internal/workload"
	"dnsttl/internal/zone"
)

// HitRateVsTTL validates the analytical cache model against the real cache
// implementation: a Zipf/Poisson client workload drives one resolver while
// the zone's TTL sweeps from seconds to a day, and the measured hit rate is
// compared with the Jung et al. prediction — including their observation
// that TTLs beyond ~1000 s buy little extra.
// Each TTL point builds its own clock, network and resolver, so the sweep
// fans across workers without shared state.
func HitRateVsTTL(queries, workers int, seed int64) *Report {
	if queries <= 0 {
		queries = 20000
	}
	ttls := []uint32{10, 30, 60, 300, 1000, 3600, 14400, 86400}
	const names = 200
	const qps = 2.0

	type point struct {
		measured, predicted float64
		latency, answerTTL  obs.HistogramSnapshot
	}
	pts := Sweep(len(ttls), workers, func(i int) point {
		ttl := ttls[i]
		clock := simnet.NewVirtualClock()
		net := simnet.NewNetwork(seed)

		rootAddr := netip.MustParseAddr("192.88.30.1")
		orgAddr := netip.MustParseAddr("192.88.30.2")
		root := zone.New(dnswire.Root)
		root.MustAdd(
			dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1, 1, 1, 86400),
			dnswire.NewNS(".", 518400, "a.root-servers.net"),
			dnswire.NewA("a.root-servers.net", 518400, rootAddr.String()),
			dnswire.NewNS("example.org", 172800, "ns1.example.org"),
			dnswire.NewA("ns1.example.org", 172800, orgAddr.String()),
		)
		org := zone.New(dnswire.NewName("example.org"))
		org.MustAdd(
			dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
			dnswire.NewNS("example.org", 86400, "ns1.example.org"),
			dnswire.NewA("ns1.example.org", 86400, orgAddr.String()),
		)
		gen := workload.New(dnswire.NewName("example.org"), names, 1.0, qps, seed+int64(i))
		for j, n := range gen.Names {
			org.MustAdd(dnswire.RR{Name: n, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: ttl, Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{198, 18, byte(j >> 8), byte(j)})}})
		}
		rootSrv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), clock)
		rootSrv.AddZone(root)
		net.Attach(rootAddr, rootSrv)
		orgSrv := authoritative.NewServer(dnswire.NewName("ns1.example.org"), clock)
		orgSrv.AddZone(org)
		net.Attach(orgAddr, orgSrv)

		res := resolver.New(netip.MustParseAddr("10.30.0.1"), resolver.DefaultPolicy(),
			net, clock, []netip.Addr{rootAddr}, seed)
		// Each point carries its own registry: the latency and answer-TTL
		// distributions come from the telemetry plane, not ad-hoc slices,
		// so a live /metrics scrape of the same setup shows these numbers.
		reg := obs.NewRegistry(clock)
		res.Obs = resolver.NewMetrics(reg)

		hits, total := 0, 0
		for q := 0; q < queries; q++ {
			gap, name := gen.Next()
			clock.Advance(gap)
			out, err := res.Resolve(name, dnswire.TypeA)
			if err != nil || out.Msg.Header.RCode != dnswire.RCodeNoError {
				continue
			}
			total++
			if out.CacheHit {
				hits++
			}
		}
		return point{
			measured:  frac(hits, total),
			predicted: gen.ExpectedHitRate(ttl),
			latency:   reg.Histogram(resolver.MetricLatency).Snapshot(),
			answerTTL: reg.Histogram(resolver.MetricAnswerTTL).Snapshot(),
		}
	})
	measured := make([]float64, len(ttls))
	predicted := make([]float64, len(ttls))
	for i, p := range pts {
		measured[i], predicted[i] = p.measured, p.predicted
	}

	tbl := &stats.Table{Title: fmt.Sprintf("Cache hit rate vs TTL (Zipf s=1, %d names, %.1f q/s, %s queries per point)",
		names, qps, stats.FormatCount(queries)),
		Header: []string{"TTL (s)", "measured", "model λT/(1+λT)",
			"lat p50 (ms)", "lat p90 (ms)", "lat p99 (ms)", "ans TTL p50 (s)"}}
	m := map[string]float64{}
	for i, ttl := range ttls {
		lat, att := pts[i].latency, pts[i].answerTTL
		tbl.AddRow(fmt.Sprintf("%d", ttl),
			fmt.Sprintf("%.3f", measured[i]), fmt.Sprintf("%.3f", predicted[i]),
			fmt.Sprintf("%.1f", lat.P50), fmt.Sprintf("%.1f", lat.P90),
			fmt.Sprintf("%.1f", lat.P99), fmt.Sprintf("%.0f", att.P50))
		m[fmt.Sprintf("hit_rate_ttl_%d", ttl)] = measured[i]
		m[fmt.Sprintf("model_ttl_%d", ttl)] = predicted[i]
		m[fmt.Sprintf("lat_p50_ms_ttl_%d", ttl)] = lat.P50
		m[fmt.Sprintf("lat_p90_ms_ttl_%d", ttl)] = lat.P90
		m[fmt.Sprintf("lat_p99_ms_ttl_%d", ttl)] = lat.P99
		m[fmt.Sprintf("answer_ttl_p50_ttl_%d", ttl)] = att.P50
	}
	m["hit_rate_1000_over_86400"] = 0
	if measured[len(ttls)-1] > 0 {
		for i, ttl := range ttls {
			if ttl == 1000 {
				m["hit_rate_1000_over_86400"] = measured[i] / measured[len(ttls)-1]
			}
		}
	}

	return &Report{
		ID:      "Hit-rate model",
		Title:   "Measured cache hit rates track the Jung et al. TTL model; benefits saturate near 1000 s",
		Text:    tbl.String(),
		Metrics: m,
	}
}
