package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const (
	pushClients = 3
	pushSeed    = 42
)

func pushGoldenPath() string {
	return filepath.Join("testdata", "push_golden.json")
}

// TestPushGolden replays every propagation cell — polling, push,
// push+prefetch, farm topologies, dropped-notify chaos — and compares the
// full per-round outcome byte for byte against the golden. Any drift in the
// feed, subscriber, purge, serve-stale gating, or fault semantics fails
// here first. Regenerate with -update.
func TestPushGolden(t *testing.T) {
	got := PushRun(pushClients, 0, pushSeed).JSON()
	if *update {
		if err := os.WriteFile(pushGoldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", pushGoldenPath(), len(got))
		return
	}
	want, err := os.ReadFile(pushGoldenPath())
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("push replay drifted from golden %s.\nRegenerate with -update if the change is intentional.\ngot:\n%s", pushGoldenPath(), got)
	}
}

// TestPushOutcomes pins the story the golden bytes must tell, so a
// legitimate -update can't silently regress the propagation semantics.
func TestPushOutcomes(t *testing.T) {
	rep := PushRun(pushClients, 0, pushSeed)
	byName := map[string]PushResult{}
	for _, r := range rep.Results {
		byName[r.Scenario.Name] = r
	}
	poll60 := byName["poll-ttl60"]
	poll3600 := byName["poll-ttl3600"]
	pushCell := byName["push-ttl3600"]
	prefetch := byName["push-prefetch-ttl3600"]
	private := byName["push-farm16-private"]
	shared := byName["push-farm16-shared"]
	dropped := byName["push-dropped-notify"]

	// The acceptance headline: a long TTL with push is at least as fresh as
	// TTL=60 polling, at >= 5x less authoritative load.
	if pushCell.Totals.StaleSeconds > poll60.Totals.StaleSeconds {
		t.Errorf("push-ttl3600 staleness %d > poll-ttl60 %d",
			pushCell.Totals.StaleSeconds, poll60.Totals.StaleSeconds)
	}
	if poll60.Totals.AuthQueries < 5*pushCell.Totals.AuthQueries {
		t.Errorf("auth query ratio %d/%d < 5x",
			poll60.Totals.AuthQueries, pushCell.Totals.AuthQueries)
	}

	// Long-TTL polling is the stale straw man: each update leaves the fleet
	// stale until TTL expiry, far beyond poll-ttl60's one-minute windows.
	if poll3600.Totals.StaleSeconds <= poll60.Totals.StaleSeconds {
		t.Errorf("poll-ttl3600 staleness %d should exceed poll-ttl60's %d",
			poll3600.Totals.StaleSeconds, poll60.Totals.StaleSeconds)
	}

	// Healthy push serves zero stale answers: every update's notify lands
	// before the next probe round.
	for _, name := range []string{"push-ttl3600", "push-prefetch-ttl3600", "push-fastchurn",
		"push-farm16-private", "push-farm16-shared"} {
		if st := byName[name].Totals.StaleSeconds; st != 0 {
			t.Errorf("%s served %d stale-seconds under a healthy push channel", name, st)
		}
		if byName[name].Totals.NotifySent == 0 || byName[name].Totals.Purged == 0 {
			t.Errorf("%s: push plane idle (notifies=%d purged=%d)",
				name, byName[name].Totals.NotifySent, byName[name].Totals.Purged)
		}
	}

	// Prefetch converts post-purge client misses into subscriber refetches.
	if prefetch.Totals.Refetches == 0 {
		t.Error("push-prefetch-ttl3600: no refetches recorded")
	}
	if prefetch.Totals.Misses >= pushCell.Totals.Misses {
		t.Errorf("prefetch misses %d not below plain push %d",
			prefetch.Totals.Misses, pushCell.Totals.Misses)
	}

	// Fragmentation survives the push plane: 16 private caches each pay the
	// refill, one shared cache pays once.
	if private.Totals.Misses <= shared.Totals.Misses {
		t.Errorf("farm16 private misses %d not above shared %d",
			private.Totals.Misses, shared.Totals.Misses)
	}

	// Dropped-notify chaos: the cut channel forces real staleness, but the
	// 300 s poll fallback bounds it — one update, <= PollSeconds per client —
	// and the recovery shows up as a poll-triggered pull.
	if dropped.Totals.StaleSeconds == 0 {
		t.Error("push-dropped-notify: outage produced no staleness (fault never bit)")
	}
	bound := pushClients * dropped.Scenario.PollSeconds
	if dropped.Totals.StaleSeconds > bound {
		t.Errorf("push-dropped-notify staleness %d exceeds poll-fallback bound %d",
			dropped.Totals.StaleSeconds, bound)
	}
	if dropped.Totals.StaleSeconds >= poll3600.Totals.StaleSeconds {
		t.Errorf("push-dropped-notify staleness %d not below poll-ttl3600's %d",
			dropped.Totals.StaleSeconds, poll3600.Totals.StaleSeconds)
	}
	if dropped.Totals.PollRecoveries == 0 {
		t.Error("push-dropped-notify: no poll recoveries; fallback never fired")
	}
}

// TestPushDeterministic proves the harness is byte-identical across worker
// counts: cells share no state, and each builds its own seeded world.
func TestPushDeterministic(t *testing.T) {
	serial := PushRun(pushClients, 1, pushSeed).JSON()
	for _, workers := range []int{1, 4, 8} {
		if got := PushRun(pushClients, workers, pushSeed).JSON(); !bytes.Equal(got, serial) {
			t.Fatalf("%d workers diverged from serial output", workers)
		}
	}
}
