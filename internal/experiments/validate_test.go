package experiments

import "testing"

// modelTolerance is the acceptance bound: the compiled model must land
// within half a hit-point of the simulated experiments.
const modelTolerance = 0.005

// TestModelValidationHitRate pins the compiler's exact cold-start
// renewal arithmetic against the simulated hitrate sweep.
func TestModelValidationHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated validation sweep")
	}
	v := ValidateHitRateModel(10000, 0, 42)
	logValidation(t, v)
	if v.MaxDelta() > modelTolerance {
		t.Errorf("hitrate model max |Δ| = %.4f, want ≤ %.4f", v.MaxDelta(), modelTolerance)
	}
}

// TestModelValidationFragmentation pins the topology lowering (private
// thinning vs shared/sharded concentration) against the simulated farm
// fragmentation grid.
func TestModelValidationFragmentation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated validation sweep")
	}
	v := ValidateFragmentationModel(12000, 0, 42)
	logValidation(t, v)
	if v.MaxDelta() > modelTolerance {
		t.Errorf("fragmentation model max |Δ| = %.4f, want ≤ %.4f", v.MaxDelta(), modelTolerance)
	}
}

// TestModelValidationPressure pins the byte-bounded transient model
// against the simulated eviction-pressure grid. One 16k-query simulated
// cell still carries ±0.004 of binomial sampling noise (SE ≈
// √(p(1−p)/n)), which is the same order as the tolerance itself — so
// the simulated side is averaged over three seeds (the model is
// deterministic and identical across them) and the MODEL-vs-mean error
// is what the bound applies to. The per-seed grids are logged so a
// regression is attributable cell by cell.
func TestModelValidationPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated validation sweep")
	}
	seeds := []int64{44, 45, 46}
	var runs []*ModelValidation
	for _, seed := range seeds {
		runs = append(runs, ValidatePressureModel(16000, 0, seed))
	}
	mean := &ModelValidation{Name: "pressure (3-seed simulated mean)"}
	for i, row := range runs[0].Rows {
		sim := 0.0
		for _, v := range runs {
			if v.Rows[i].Key != row.Key {
				t.Fatalf("row order diverged across seeds: %q vs %q", v.Rows[i].Key, row.Key)
			}
			sim += v.Rows[i].Simulated
		}
		mean.Rows = append(mean.Rows, ModelRow{
			Key: row.Key, Simulated: sim / float64(len(runs)), Compiled: row.Compiled,
		})
	}
	logValidation(t, mean)
	if mean.MaxDelta() > modelTolerance {
		t.Errorf("pressure model max |Δ| = %.4f vs 3-seed mean, want ≤ %.4f",
			mean.MaxDelta(), modelTolerance)
	}
	// And no single cell may drift beyond tolerance + the per-seed noise
	// allowance (3 SE ≈ 0.011) on any individual seed — catches gross
	// model breakage that seed-averaging could mask.
	for _, v := range runs {
		if v.MaxDelta() > modelTolerance+0.011 {
			t.Errorf("single-seed pressure max |Δ| = %.4f, want ≤ %.4f", v.MaxDelta(), modelTolerance+0.011)
		}
	}
}

func logValidation(t *testing.T, v *ModelValidation) {
	t.Helper()
	t.Logf("%s: max |Δ| = %.4f", v.Name, v.MaxDelta())
	for _, r := range v.Rows {
		t.Logf("  %-28s sim=%.4f model=%.4f Δ=%+.4f", r.Key, r.Simulated, r.Compiled, r.Delta())
	}
}

// TestModelValidationReport exercises the Report rendering used by the
// CI smoke job.
func TestModelValidationReport(t *testing.T) {
	v := &ModelValidation{Name: "demo", Rows: []ModelRow{
		{Key: "cell_a", Simulated: 0.5, Compiled: 0.502},
		{Key: "cell_b", Simulated: 0.8, Compiled: 0.797},
	}}
	if got := v.MaxDelta(); got < 0.0029 || got > 0.0031 {
		t.Errorf("MaxDelta = %v, want 0.003", got)
	}
	rep := v.Report()
	if rep.Metrics["max_delta"] != v.MaxDelta() {
		t.Error("report metric max_delta mismatch")
	}
	if rep.Metrics["delta_cell_b"] >= 0 {
		t.Error("signed delta lost in report")
	}
}
