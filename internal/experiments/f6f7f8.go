package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/population"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
)

// Answer contents before and after the renumbering (world.go's
// ConfigureSub/RenumberSub).
const (
	oldAnswer = "2001:db8::1"
	newAnswer = "2001:db8::2"
)

// BailiwickResult is one renumbering campaign's digest.
type BailiwickResult struct {
	InBailiwick bool
	// PerRound[r] counts old/new-content answers in round r (10-minute
	// bins, the Figures 6/7 bars).
	PerRound []struct{ Old, New, Other int }
	// Responses per VP for stickiness and Figure 8.
	VPOld, VPNew map[int]int
	VPs          int
	Queries      int
	Valid        int
	Discarded    int
	Timeouts     int
}

// runBailiwick executes one §4.2/§4.3 campaign: probe every 600 s for 4 h,
// renumber the server at round 1 (t=10 min, the paper's t=9 min).
func runBailiwick(inBailiwick bool, probes int, seed int64) *BailiwickResult {
	return runBailiwickMix(inBailiwick, probes, seed, nil)
}

// runBailiwickMix is runBailiwick with an explicit resolver population, for
// the ablation studies.
func runBailiwickMix(inBailiwick bool, probes int, seed int64, mix population.Mix) *BailiwickResult {
	tb := NewTestbed(seed)
	tb.ConfigureSub(inBailiwick)
	fleet := tb.Fleet(probes, mix, seed)

	rounds := 24 // 4 hours
	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name:     dnswire.NewName("PROBEID.sub.cachetest.net"),
		Type:     dnswire.TypeAAAA,
		Interval: 600 * time.Second,
		Rounds:   rounds,
		PerProbe: true,
		OnRound: func(r int) {
			if r == 1 {
				tb.RenumberSub(inBailiwick)
			}
		},
	})

	out := &BailiwickResult{
		InBailiwick: inBailiwick,
		PerRound:    make([]struct{ Old, New, Other int }, rounds),
		VPOld:       make(map[int]int),
		VPNew:       make(map[int]int),
		VPs:         len(fleet.VPs),
	}
	for _, r := range resps {
		out.Queries++
		if !r.Valid() {
			out.Discarded++
			if r.Err != nil {
				out.Timeouts++
			}
			continue
		}
		out.Valid++
		switch r.Answer {
		case oldAnswer:
			out.PerRound[r.Round].Old++
			out.VPOld[r.VPID]++
		case newAnswer:
			out.PerRound[r.Round].New++
			out.VPNew[r.VPID]++
		default:
			out.PerRound[r.Round].Other++
		}
	}
	return out
}

// fracNewInWindow returns the fraction of answers carrying the new content
// within rounds [lo, hi).
func (b *BailiwickResult) fracNewInWindow(lo, hi int) float64 {
	old, new_ := 0, 0
	for r := lo; r < hi && r < len(b.PerRound); r++ {
		old += b.PerRound[r].Old
		new_ += b.PerRound[r].New
	}
	return frac(new_, old+new_)
}

// StickyVPs returns the VPs that only ever saw old content despite
// answering in the final hour — the paper's Table 4 census.
func (b *BailiwickResult) StickyVPs() []int {
	var out []int
	for vp, n := range b.VPOld {
		if n >= 20 && b.VPNew[vp] == 0 {
			// Answered nearly every round, never switched.
			out = append(out, vp)
		}
	}
	return out
}

func renderTimeseries(title string, b *BailiwickResult) string {
	tbl := &stats.Table{Title: title, Header: []string{"t (min)", "old", "new", "bar"}}
	for r, row := range b.PerRound {
		tot := row.Old + row.New
		bar := ""
		if tot > 0 {
			w := 40 * row.New / tot
			for i := 0; i < 40; i++ {
				if i < w {
					bar += "#" // new server
				} else {
					bar += "."
				}
			}
		}
		tbl.AddRow(fmt.Sprintf("%d", r*10), stats.FormatCount(row.Old), stats.FormatCount(row.New), bar)
	}
	return tbl.String()
}

// BailiwickPair runs the in- and out-of-bailiwick campaigns with matched
// fleets and produces Figures 6, 7 and 8 plus Tables 3 and 4.
func BailiwickPair(probes int, seed int64) *Report {
	in := runBailiwick(true, probes, seed)
	out := runBailiwick(false, probes, seed)

	t3 := &stats.Table{Title: "Table 3: bailiwick experiments",
		Header: []string{"quantity", "in-bailiwick", "out-of-bailiwick"}}
	addRow := func(name string, f func(*BailiwickResult) int) {
		t3.AddRow(name, stats.FormatCount(f(in)), stats.FormatCount(f(out)))
	}
	addRow("VPs", func(b *BailiwickResult) int { return b.VPs })
	addRow("queries", func(b *BailiwickResult) int { return b.Queries })
	addRow("responses (valid)", func(b *BailiwickResult) int { return b.Valid })
	addRow("responses (disc.)", func(b *BailiwickResult) int { return b.Discarded })

	inSticky := in.StickyVPs()
	outSticky := out.StickyVPs()
	t4 := &stats.Table{Title: "Table 4: sticky-resolver census",
		Header: []string{"", "in-bailiwick", "out-of-bailiwick"}}
	t4.AddRow("sticky VPs", stats.FormatCount(len(inSticky)), stats.FormatCount(len(outSticky)))

	// Figure 8: VPs sticky out-of-bailiwick, their new-content ratio in
	// the in-bailiwick run. Most are not sticky at all there — their
	// out-of-bailiwick stickiness was parent-centricity (§4.4/§4.5).
	f8 := stats.NewSample()
	switchers := 0
	for _, vp := range outSticky {
		tot := in.VPOld[vp] + in.VPNew[vp]
		if tot > 0 {
			ratio := frac(in.VPNew[vp], tot)
			f8.Add(ratio)
			if ratio >= 0.5 {
				switchers++
			}
		}
	}

	text := t3.String() + "\n" +
		renderTimeseries("Figure 6: in-bailiwick (renumber at t=10; NS TTL 3600, A TTL 7200)", in) + "\n" +
		renderTimeseries("Figure 7: out-of-bailiwick", out) + "\n" +
		t4.String() + "\n" +
		stats.RenderCDF("Figure 8: new-content ratio (in-bailiwick) of VPs sticky out-of-bailiwick",
			"ratio", map[string]*stats.Sample{"matched VPs": f8}, 50, false)

	return &Report{
		ID:    "Figures 6-8",
		Title: "Effective TTLs under renumbering: in- vs out-of-bailiwick servers",
		Text:  text,
		Metrics: map[string]float64{
			// In-bailiwick: before NS expiry (rounds 2..6) everyone still
			// holds the old content; after NS expiry (rounds 7..11) the
			// coupled majority has switched even though the A was valid.
			"in_frac_new_before_ns_expiry":  in.fracNewInWindow(2, 6),
			"in_frac_new_after_ns_expiry":   in.fracNewInWindow(7, 12),
			"in_frac_new_after_both_expiry": in.fracNewInWindow(13, 24),
			// Out-of-bailiwick: the cached A survives the NS expiry, so
			// the switch happens only after the full 2 h.
			"out_frac_new_after_ns_expiry":   out.fracNewInWindow(7, 12),
			"out_frac_new_after_both_expiry": out.fracNewInWindow(13, 24),
			"in_sticky_vps":                  float64(len(inSticky)),
			"out_sticky_vps":                 float64(len(outSticky)),
			"out_sticky_frac":                frac(len(outSticky), out.VPs),
			"f8_matched_mean_new_ratio":      f8.Mean(),
			"f8_matched_frac_switchers":      frac(switchers, f8.Len()),
		},
	}
}

// OfflineChild reproduces the §4.4 zurrundedu-offline check: with the child
// authoritative servers down, only parent-centric resolvers (which trust
// the .com referral for two days) still answer the NS query; everyone else
// fails.
func OfflineChild(probes int, seed int64) *Report {
	tb := NewTestbed(seed)
	tb.ConfigureSub(false) // builds the zurro-dns.com zone and server
	if err := tb.Net.SetDown(tb.ZurroAddr, true); err != nil {
		panic(err)
	}
	// The paper confirmed OpenDNS's parent-centricity from pcaps: the
	// child authoritatives never received the NS query. The network tap
	// is our packet capture.
	childQueries := 0
	tb.Net.Tap = func(ev simnet.TapEvent) {
		if ev.Dst == tb.ZurroAddr {
			childQueries++
		}
	}
	fleet := tb.Fleet(probes, nil, seed)
	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name: dnswire.NewName("zurro-dns.com"), Type: dnswire.TypeNS,
		Interval: 300 * time.Second, Rounds: 2,
	})
	byProfile := map[string][2]int{} // valid, total
	for _, r := range resps {
		c := byProfile[r.Profile]
		c[1]++
		if r.Valid() {
			c[0]++
		}
		byProfile[r.Profile] = c
	}
	tbl := &stats.Table{Title: "Child authoritatives offline: who still answers NS zurro-dns.com?",
		Header: []string{"profile", "valid", "total"}}
	metrics := map[string]float64{}
	for _, p := range []string{"bind-like", "unbound-like", "google-like", "opendns-like", "localroot", "sticky", "decoupled"} {
		c := byProfile[p]
		tbl.AddRow(p, stats.FormatCount(c[0]), stats.FormatCount(c[1]))
		metrics["valid_frac_"+p] = frac(c[0], c[1])
	}
	// Attempts reached the dead child only from child-centric resolvers;
	// parent-centric answers involved no child contact at all.
	metrics["child_query_attempts"] = float64(childQueries)
	return &Report{
		ID:      "§4.4 offline",
		Title:   "Parent-centric resolvers answer from the parent when the child is down",
		Text:    tbl.String(),
		Metrics: metrics,
	}
}
