package experiments

import (
	"fmt"

	"dnsttl/internal/crawler"
	"dnsttl/internal/stats"
	"dnsttl/internal/zonegen"
)

// ParentChildComparison carries out the "full comparison of parent and
// child" TTLs the paper declares as future work (§5.1): per list, how many
// children set their NS TTL below, at, or above the registry's delegation
// TTL, and the distribution of child/parent ratios. The paper's one data
// point — "about 40 % of .nl children have shorter TTLs" than the
// registry's hour — anchors the .nl column.
func ParentChildComparison(results map[zonegen.List]*crawler.Result) *Report {
	tbl := &stats.Table{
		Title:  "Parent vs child NS TTLs (domains with both sides observed)",
		Header: []string{"", "Alexa", "Majestic", "Umbre.", ".nl", "Root"},
	}
	row := func(name string, f func(*crawler.Result) string) {
		cells := []string{name}
		for _, l := range listOrder {
			cells = append(cells, f(results[l]))
		}
		tbl.AddRow(cells...)
	}
	compared := func(r *crawler.Result) int { return r.ChildShorter + r.ChildEqual + r.ChildLonger }
	row("compared", func(r *crawler.Result) string { return stats.FormatCount(compared(r)) })
	row("child shorter", func(r *crawler.Result) string {
		return fmt.Sprintf("%s (%.0f%%)", stats.FormatCount(r.ChildShorter), 100*frac(r.ChildShorter, compared(r)))
	})
	row("child equal", func(r *crawler.Result) string {
		return fmt.Sprintf("%s (%.0f%%)", stats.FormatCount(r.ChildEqual), 100*frac(r.ChildEqual, compared(r)))
	})
	row("child longer", func(r *crawler.Result) string {
		return fmt.Sprintf("%s (%.0f%%)", stats.FormatCount(r.ChildLonger), 100*frac(r.ChildLonger, compared(r)))
	})
	row("median child/parent", func(r *crawler.Result) string {
		if r.ParentChildRatios.Len() == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", r.ParentChildRatios.Median())
	})

	m := map[string]float64{}
	for _, l := range listOrder {
		r := results[l]
		m["frac_child_shorter_"+string(l)] = frac(r.ChildShorter, compared(r))
		m["frac_child_equal_"+string(l)] = frac(r.ChildEqual, compared(r))
		// The paper's .nl anchor counts children at or below the
		// registry's hour ("about 40 % ... have shorter TTLs").
		m["frac_child_le_parent_"+string(l)] = frac(r.ChildShorter+r.ChildEqual, compared(r))
		if r.ParentChildRatios.Len() > 0 {
			m["median_ratio_"+string(l)] = r.ParentChildRatios.Median()
		}
	}

	fig := ""
	series := map[string]*stats.Sample{}
	for _, l := range listOrder {
		if results[l].ParentChildRatios.Len() > 0 {
			series[string(l)] = results[l].ParentChildRatios
		}
	}
	fig = stats.RenderCDF("Child/parent NS TTL ratio per list (1.0 = aligned)",
		"ratio", series, 64, true)

	return &Report{
		ID:      "Parent vs child",
		Title:   "The paper's future work: full parent/child TTL comparison",
		Text:    tbl.String() + "\n" + fig,
		Metrics: m,
	}
}
