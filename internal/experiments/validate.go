package experiments

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/cache"
	"dnsttl/internal/compile"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/stats"
	"dnsttl/internal/workload"
)

// validate.go closes the loop between the two execution planes: the
// simulated experiments (real resolver, real cache, packet-level
// iteration) and the workload compiler's closed-form renewal arithmetic
// (internal/compile). Each validator reruns a simulated experiment,
// rebuilds the same world's parameters on the compiled side — the actual
// Zipf masses from workload.Masses, the policy-capped lifetime from
// resolver.Policy.CacheLifetime, the measured cache byte overheads via
// cache.EntryCharge — and compares hit rates cell by cell. The compiled
// model must land within half a hit-point; the planet-scale tier stands
// on that agreement.

// ModelRow is one compared cell: the simulated hit rate and the
// compiler's closed-form prediction for the identical configuration.
type ModelRow struct {
	Key                 string
	Simulated, Compiled float64
}

// Delta is the signed model error in hit-rate points.
func (r ModelRow) Delta() float64 { return r.Compiled - r.Simulated }

// ModelValidation is one experiment's full comparison.
type ModelValidation struct {
	Name string
	Rows []ModelRow
}

// MaxDelta is the worst absolute model error across the grid.
func (v *ModelValidation) MaxDelta() float64 {
	worst := 0.0
	for _, r := range v.Rows {
		if d := r.Delta(); d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst
}

// Report renders the comparison as a standard experiment report.
func (v *ModelValidation) Report() *Report {
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Compiled model vs simulated %s (max |Δ| = %.4f)", v.Name, v.MaxDelta()),
		Header: []string{"cell", "simulated", "compiled", "Δ"},
	}
	m := map[string]float64{}
	for _, r := range v.Rows {
		tbl.AddRow(r.Key, fmt.Sprintf("%.4f", r.Simulated),
			fmt.Sprintf("%.4f", r.Compiled), fmt.Sprintf("%+.4f", r.Delta()))
		m["delta_"+r.Key] = r.Delta()
	}
	m["max_delta"] = v.MaxDelta()
	return &Report{
		ID:      "Model validation: " + v.Name,
		Title:   fmt.Sprintf("Workload-compiler hit rates track the simulated %s experiment", v.Name),
		Text:    tbl.String(),
		Metrics: m,
	}
}

// finiteHits is one name's expected hit count over horizon d: arrivals
// minus the exact cold-start miss count at the line's effective lifetime.
func finiteHits(lambda, lifetime, d float64) float64 {
	return lambda*d - compile.ColdMisses(lambda, lifetime, d)
}

// ValidateHitRateModel compares the compiler against HitRateVsTTL: same
// name universe, same per-point horizon (queries/qps), exact cold-start
// arithmetic per name.
func ValidateHitRateModel(queries, workers int, seed int64) *ModelValidation {
	if queries <= 0 {
		queries = 20000
	}
	sim := HitRateVsTTL(queries, workers, seed)
	const names, qps = 200, 2.0
	masses := workload.New(dnswire.NewName("example.org"), names, 1.0, qps, seed).Masses()
	pol := resolver.DefaultPolicy()
	d := float64(queries) / qps
	v := &ModelValidation{Name: "hitrate"}
	for _, ttl := range []uint32{10, 30, 60, 300, 1000, 3600, 14400, 86400} {
		life := float64(pol.CacheLifetime(ttl))
		hits := 0.0
		for _, m := range masses {
			hits += finiteHits(qps*m, life, d)
		}
		key := fmt.Sprintf("hit_rate_ttl_%d", ttl)
		v.Rows = append(v.Rows, ModelRow{
			Key: key, Simulated: sim.Metrics[key], Compiled: hits / float64(queries),
		})
	}
	return v
}

// ValidateFragmentationModel compares the compiler against
// FarmFragmentation. Topology lowers to renewal structure: Private with
// random placement thins each name's Poisson stream to λ/n per frontend
// (n independent cold caches); Shared and Sharded concentrate each name
// in exactly one cache, so they match the single-resolver line.
func ValidateFragmentationModel(queries, workers int, seed int64) *ModelValidation {
	if queries <= 0 {
		queries = 4000
	}
	sim := FarmFragmentation(queries, workers, seed)
	const names, qps = 150, 8.0
	masses := workload.New(dnswire.NewName("example.org"), names, 1.0, qps, seed).Masses()
	pol := resolver.DefaultPolicy()
	d := float64(queries) / qps
	v := &ModelValidation{Name: "fragmentation"}
	for _, ttl := range []uint32{60, 3600} {
		life := float64(pol.CacheLifetime(ttl))
		for _, nf := range []int{1, 4, 16} {
			for _, topo := range []string{"private", "shared", "sharded"} {
				hits := 0.0
				for _, m := range masses {
					li := qps * m
					if topo == "private" {
						// n independent caches, each fed the thinned stream.
						hits += float64(nf) * finiteHits(li/float64(nf), life, d)
					} else {
						hits += finiteHits(li, life, d)
					}
				}
				key := fmt.Sprintf("hit_%s_f%d_ttl%d", topo, nf, ttl)
				v.Rows = append(v.Rows, ModelRow{
					Key: key, Simulated: sim.Metrics[key], Compiled: hits / float64(queries),
				})
			}
		}
	}
	return v
}

// pressureOverheads measures the model's byte inputs from the real cache:
// the per-entry charge of one workload record (cache.EntryCharge of its
// key and wire size) and the resident infrastructure bytes (root/org
// referral records) a warmed resolver carries before any workload entry —
// the BaseBytes the byte fixed point must reserve.
func pressureOverheads(seed int64) (perEntry, baseBytes float64) {
	w := newPressureWorld(pressureTTLs[0], seed)
	res := resolver.New(netip.MustParseAddr("10.31.0.9"), resolver.DefaultPolicy(),
		w.net, w.clock, []netip.Addr{w.rootAddr}, seed)
	name := w.gen.Names[0]
	if _, err := res.Resolve(name, dnswire.TypeA); err != nil {
		panic(err)
	}
	rr := pressureRecord(name, 0, pressureTTLs[0])
	perEntry = float64(cache.EntryCharge(len(name), rr.WireSize()))
	baseBytes = float64(res.Cache.Stats().Bytes) - perEntry
	return perEntry, baseBytes
}

// ValidatePressureModel compares the compiler's transient byte-bounded
// model against PressureRun: same masses, same MaxBytes and entry
// capacity, same eviction policies. The short pressure horizon (~167s)
// is dominated by the cold-start transient — the cache fills with both
// fresh and expired-but-resident entries until the byte bound bites —
// so the steady fixed point is the wrong tool; compile.TransientCache
// steps the resident/fresh aggregate through the window instead. The
// transient stepper smooths the cold-start front its ODE can't resolve,
// so each line's hits are taken as the EXACT unbounded cold-start count
// (ColdMisses arithmetic) scaled by the stepper's bounded/unbounded hit
// ratio: the discretization error cancels in the ratio, leaving only
// the eviction physics.
func ValidatePressureModel(queries, workers int, seed int64) *ModelValidation {
	if queries <= 0 {
		queries = 4000
	}
	rep := PressureRun(queries, workers, seed)
	masses := workload.New(dnswire.NewName("example.org"), pressureNames, 1.0, pressureQPS, seed).Masses()
	perEntry, baseBytes := pressureOverheads(seed)
	d := float64(queries) / pressureQPS
	v := &ModelValidation{Name: "pressure"}
	for _, c := range rep.Cells {
		mkLines := func() []compile.Line {
			lines := make([]compile.Line, len(masses))
			for i, m := range masses {
				lines[i] = compile.Line{Lambda: pressureQPS * m, TTL: float64(c.TTL), Bytes: perEntry}
			}
			return lines
		}
		frac := 0.0
		if c.Prefetch {
			frac = 0.5
		}
		maxBytes := float64(c.MaxKB) * 1024
		spec := compile.CacheSpec{
			MaxBytes: maxBytes, BaseBytes: baseBytes,
			Policy: c.Policy, PrefetchFrac: frac,
			MaxEntries: maxBytes / 100, // mirrors pressureCell's Capacity
		}
		const steps = 512
		perLine := compile.FiniteHitModel(mkLines(), spec, d, steps)
		hits := 0.0
		for _, h := range perLine {
			hits += h
		}
		key := fmt.Sprintf("hit_%s_%dkb_ttl%d", c.Policy, c.MaxKB, c.TTL)
		if c.Prefetch {
			key = fmt.Sprintf("hit_%s_pf_%dkb_ttl%d", c.Policy, c.MaxKB, c.TTL)
		}
		simulated := 0.0
		if c.Answered > 0 {
			simulated = float64(c.Hits) / float64(c.Answered)
		}
		v.Rows = append(v.Rows, ModelRow{
			Key: key, Simulated: simulated, Compiled: hits / float64(queries),
		})
	}
	return v
}
