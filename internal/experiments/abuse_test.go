package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	abuseQueries = 800
	abuseSeed    = 42
)

func abuseGoldenPath() string {
	return filepath.Join("testdata", "abuse_golden.json")
}

// TestAbuseGolden replays the water-torture grid and compares every cell —
// attack outcomes, authoritative rx/full/slip/drop, honest hit rates, RRL
// and edge counters — byte for byte against the golden. Any drift in the
// middleware pipeline, the farm's per-frontend pipelines, or the RRL
// limiter's bucket arithmetic fails here first.
func TestAbuseGolden(t *testing.T) {
	got := WaterTortureRun(abuseQueries, 0, abuseSeed).JSON()
	if *update {
		if err := os.WriteFile(abuseGoldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", abuseGoldenPath(), len(got))
		return
	}
	want, err := os.ReadFile(abuseGoldenPath())
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("water-torture replay drifted from golden %s.\nRegenerate with -update if the change is intentional.\ngot:\n%s", abuseGoldenPath(), got)
	}
}

// TestAbuseOutcomes pins the story the golden bytes must tell, so a
// legitimate -update can't silently regress the protections:
// the flood bypasses the cache when unprotected, RRL cuts the reflected
// amplification ≥5×, edge limiting starves the authoritative of attack
// queries, and no defense costs the honest stream a full hit-point.
func TestAbuseOutcomes(t *testing.T) {
	rep := WaterTortureRun(abuseQueries, 0, abuseSeed)
	cells := map[string]AbuseCell{}
	for _, c := range rep.Cells {
		cells[c.Protection+"/"+c.Topology+"/f"+string(rune('0'+c.Frontends))] = c
	}
	shapes := []string{"private/f1", "private/f4", "shared/f4"}
	get := func(p, shape string) AbuseCell {
		c, ok := cells[p+"/"+shape]
		if !ok {
			t.Fatalf("missing cell %s/%s", p, shape)
		}
		return c
	}

	for _, sh := range shapes {
		open := get("open", sh)

		// Unprotected, every unique qname defeats the cache: ≥90% of the
		// flood reaches the authoritative and is answered in full.
		if open.BypassMilli < 900 {
			t.Errorf("%s open: bypass %d‰, want ≥900‰ (unique qnames must defeat the cache)", sh, open.BypassMilli)
		}
		if open.AuthAttackFull < open.AttackQueries*9/10 {
			t.Errorf("%s open: only %d/%d full responses reflected", sh, open.AuthAttackFull, open.AttackQueries)
		}

		// RRL: ≥5× fewer full (amplifiable) responses, with slips present
		// so spoofed-into-a-bucket honest clients keep a TCP escape hatch.
		for _, p := range []string{"rrl", "full"} {
			prot := get(p, sh)
			if prot.AuthAttackFull*5 > open.AuthAttackFull {
				t.Errorf("%s %s: amplification cut %d→%d is under 5×", sh, p, open.AuthAttackFull, prot.AuthAttackFull)
			}
		}
		rrl := get("rrl", sh)
		if rrl.AuthAttackSlip == 0 || rrl.RRLSlipped == 0 {
			t.Errorf("%s rrl: no slipped (TC=1) responses observed", sh)
		}
		if rrl.AuthAttackDrop == 0 || rrl.RRLDropped == 0 {
			t.Errorf("%s rrl: no dropped responses observed", sh)
		}
		// RRL does not reduce received queries — it limits responses.
		if rrl.BypassMilli < 900 {
			t.Errorf("%s rrl: bypass %d‰; RRL should not mask the cache-bypass rate", sh, rrl.BypassMilli)
		}

		// Edge limiting cuts what even reaches the authoritative. Each
		// frontend runs its own bucket, so the cut divides by the farm
		// size: ≥5× behind one frontend, ≥3× behind four.
		wantCut := 5
		if strings.Contains(sh, "f4") {
			wantCut = 3
		}
		for _, p := range []string{"edge", "full"} {
			prot := get(p, sh)
			if prot.AuthAttackRx*wantCut > open.AuthAttackRx {
				t.Errorf("%s %s: attack rx cut %d→%d is under %d×", sh, p, open.AuthAttackRx, prot.AuthAttackRx, wantCut)
			}
			if prot.AttackLimited == 0 || prot.EdgeLimited == 0 {
				t.Errorf("%s %s: edge limiter never fired (limited=%d, counter=%d)", sh, p, prot.AttackLimited, prot.EdgeLimited)
			}
		}

		// Collateral: every honest query answered, and no protection moves
		// the honest hit rate by a full hit-point (10 milli).
		for _, p := range []string{"open", "rrl", "edge", "full"} {
			c := get(p, sh)
			if c.HonestAnswered != c.HonestQueries {
				t.Errorf("%s %s: honest answered %d/%d", sh, p, c.HonestAnswered, c.HonestQueries)
			}
			d := c.HonestHitMilli - open.HonestHitMilli
			if d < 0 {
				d = -d
			}
			if d >= 10 {
				t.Errorf("%s %s: honest hit rate moved %d milli (open %d‰ vs %d‰), want <10", sh, p, d, open.HonestHitMilli, c.HonestHitMilli)
			}
		}
	}
}

// TestAbuseDeterministic proves the tier — and through it the per-frontend
// pipeline state, the RRL buckets, and the mixed workload interleave — is
// byte-identical across worker counts and repeated runs.
func TestAbuseDeterministic(t *testing.T) {
	serial := WaterTortureRun(abuseQueries, 1, abuseSeed).JSON()
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4, 8} {
			got := WaterTortureRun(abuseQueries, workers, abuseSeed).JSON()
			if !bytes.Equal(got, serial) {
				t.Fatalf("run %d with %d workers diverged from serial output", run, workers)
			}
		}
	}
}
