package experiments

import (
	"strings"
	"testing"
)

func TestTable2(t *testing.T) {
	r := Table2(60, 23)
	for _, label := range []string{".uy-NS", "a.nic.uy-A", "google.co-NS", ".uy-NS-new"} {
		if r.Metric("valid_"+label) == 0 {
			t.Errorf("campaign %s produced no valid responses", label)
		}
		if f := r.Metric("valid_ratio_" + label); f < 0.95 {
			t.Errorf("campaign %s valid ratio = %.3f", label, f)
		}
	}
	for _, want := range []string{"600s", "NS uy.", "A a.nic.uy.", "86400 s", "345600 s"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, r.Text)
		}
	}
}
