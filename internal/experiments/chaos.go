package experiments

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// The chaos harness replays canned fault schedules against the standard
// testbed and records exact per-round resolver outcomes — answered, stale,
// queries, timeouts, retries, hedges — as pure-integer JSON. The goldens in
// testdata/ pin the retry/backoff/hedging/serve-stale semantics byte for
// byte: any behavioral drift in the resolver's failure handling shows up as
// a golden diff, and TestChaosDeterministic proves the same report comes
// out at every worker count.
//
// Schedules are written in the ParseFaultSchedule grammar so the harness
// doubles as the parser's integration test. The testbed address plan is
// deterministic (addrSeq), so the specs can name servers directly:
// 192.88.0.1 is the root, 192.88.0.2 the gTLD farm, 192.88.0.7
// ns1.cachetest.net.

// chaosCtAddr is ns1.cachetest.net in the testbed's fixed address plan.
const chaosCtAddr = "192.88.0.7"

// chaosNS2Addr hosts the second cachetest.net nameserver the hedge scenario
// installs (outside the addrSeq range, attached to the same backend).
var chaosNS2Addr = netip.MustParseAddr("192.88.0.200")

// ChaosScenario is one canned chaos run: a fault schedule, the resolver
// policy that faces it, and the query stream.
type ChaosScenario struct {
	// Name labels the scenario in reports and goldens.
	Name string `json:"name"`
	// Spec is the fault schedule in ParseFaultSchedule grammar; empty means
	// a fault-free baseline.
	Spec string `json:"spec"`
	// Retry is the resolver retry plane under test; the zero value is the
	// legacy single-shot resolver.
	Retry resolver.RetryPolicy `json:"-"`
	// ServeStale arms RFC 8767 serving of expired entries.
	ServeStale bool `json:"-"`
	// SecondNS installs ns2.cachetest.net (a second address for the same
	// backend, placed a continent away) so hedged queries have a backup
	// candidate.
	SecondNS bool `json:"-"`
}

// ChaosRound is the summed outcome of one probe round. Every field is an
// integer, so the JSON encoding is byte-stable across runs and platforms.
type ChaosRound struct {
	Round    int `json:"round"`
	Answered int `json:"answered"`
	Stale    int `json:"stale"`
	Queries  int `json:"queries"`
	Timeouts int `json:"timeouts"`
	Retries  int `json:"retries"`
	Hedges   int `json:"hedges"`
}

// ChaosResult is one scenario's full replay.
type ChaosResult struct {
	Scenario string       `json:"scenario"`
	Spec     string       `json:"spec,omitempty"`
	Rounds   []ChaosRound `json:"rounds"`
}

// ChaosReport is the harness output: one result per scenario.
type ChaosReport struct {
	Seed    int64         `json:"seed"`
	Probes  int           `json:"probes"`
	Results []ChaosResult `json:"results"`
}

// ChaosScenarios returns the canned scenario set the goldens pin. The
// windows all use 600 s rounds: faults arm at round 2 (t=1200 s) and clear
// at round 6, except the flap which runs from the start.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			// No faults, legacy resolver: the control row.
			Name: "baseline",
		},
		{
			// Hard outage bridged purely by serve-stale — §5's strongest
			// argument for RFC 8767.
			Name:       "outage-stale",
			Spec:       "outage:" + chaosCtAddr + ":1200s+2400s",
			ServeStale: true,
		},
		{
			// 60 % loss burst; four attempts with jittered backoff rescue
			// most rounds without stale answers.
			Name: "loss-retry",
			Spec: "loss:" + chaosCtAddr + ":1200s+2400s:0.6",
			Retry: resolver.RetryPolicy{
				Attempts: 4, Backoff: 200 * time.Millisecond, Jitter: 0.5,
			},
		},
		{
			// 40× latency spike on the primary; a hedged query to the
			// second (farther but healthy) nameserver wins the race.
			Name:     "spike-hedge",
			Spec:     "latency:" + chaosCtAddr + ":1200s+2400s:40",
			SecondNS: true,
			Retry: resolver.RetryPolicy{
				Hedge: 120 * time.Millisecond, OrderBySRTT: true,
			},
		},
		{
			// SERVFAIL storm: retries burn through the attempt budget
			// (failure rcodes are retryable under an active policy), then
			// serve-stale answers the client anyway.
			Name:       "servfail-storm",
			Spec:       "servfail:" + chaosCtAddr + ":1200s+2400s",
			ServeStale: true,
			Retry: resolver.RetryPolicy{
				Attempts: 3, Backoff: 100 * time.Millisecond,
			},
		},
		{
			// Flapping server, 450 s period, down half of each. Backoff
			// grows 30 s → 90 s → 270 s, and because retries ride the
			// resolution's accumulated virtual latency forward through the
			// schedule, the later attempts land in up-phases.
			Name: "flap-backoff",
			Spec: "flap:" + chaosCtAddr + ":0s+4800s:450s,0.5",
			Retry: resolver.RetryPolicy{
				Attempts: 4, Backoff: 30 * time.Second, Factor: 3,
				MaxBackoff: 300 * time.Second,
			},
		},
	}
}

// chaosRounds and chaosInterval shape every scenario's probe stream.
const (
	chaosRounds   = 8
	chaosInterval = 600 * time.Second
)

// ChaosReplay runs one scenario with the given probe count and returns its
// per-round outcome. Each call builds a fresh seeded testbed, so replays
// are independent and byte-identical per (scenario, probes, seed).
func ChaosReplay(sc ChaosScenario, probes int, seed int64) ChaosResult {
	tb := NewTestbed(seed)
	// A 60 s record expires between rounds, so every round exercises the
	// upstream path while the fault windows are live.
	if !tb.Ct.SetTTL(dnswire.NewName("www.cachetest.net"), dnswire.TypeA, 60) {
		panic("missing record")
	}
	if sc.SecondNS {
		tb.Ct.MustAdd(
			dnswire.NewNS("cachetest.net", 3600, "ns2.cachetest.net"),
			dnswire.NewA("ns2.cachetest.net", 3600, chaosNS2Addr.String()),
		)
		tb.Net_.MustAdd(
			dnswire.NewNS("cachetest.net", 172800, "ns2.cachetest.net"),
			dnswire.NewA("ns2.cachetest.net", 172800, chaosNS2Addr.String()),
		)
		tb.Net.Attach(chaosNS2Addr, tb.Servers[tb.CtAddr])
		tb.Topo.Place(chaosNS2Addr, latency.SA)
	}
	if sc.Spec != "" {
		fs, err := simnet.ParseFaultSchedule(sc.Spec)
		if err != nil {
			panic(fmt.Sprintf("chaos scenario %s: %v", sc.Name, err))
		}
		fs.Seed = seed
		tb.Net.Faults = fs
	}

	pol := resolver.DefaultPolicy()
	pol.ServeStale = sc.ServeStale
	pol.Retry = sc.Retry

	regions := []latency.Region{latency.EU, latency.NA, latency.SA}
	probesList := make([]*resolver.Resolver, probes)
	for i := range probesList {
		addr := netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
		tb.Topo.Place(addr, regions[i%len(regions)])
		probesList[i] = resolver.New(addr, pol, tb.Net, tb.Clock,
			[]netip.Addr{tb.RootAddr}, seed+int64(i))
	}

	name := dnswire.NewName("www.cachetest.net")
	out := ChaosResult{Scenario: sc.Name, Spec: sc.Spec}
	for round := 0; round < chaosRounds; round++ {
		cr := ChaosRound{Round: round}
		for _, p := range probesList {
			res, err := p.Resolve(name, dnswire.TypeA)
			if err == nil && res.Msg.Header.RCode == dnswire.RCodeNoError &&
				len(res.Msg.Answer) > 0 {
				cr.Answered++
			}
			if res != nil {
				if res.Stale {
					cr.Stale++
				}
				cr.Queries += res.Queries
				cr.Timeouts += res.Timeouts
				cr.Retries += res.Retries
				cr.Hedges += res.Hedges
			}
		}
		out.Rounds = append(out.Rounds, cr)
		tb.Clock.Advance(chaosInterval)
	}
	return out
}

// ChaosRun replays every canned scenario, fanning scenarios across workers.
// The report is identical at any worker count: each scenario builds its own
// testbed and clock, and no state crosses cells.
func ChaosRun(probes, workers int, seed int64) *ChaosReport {
	scenarios := ChaosScenarios()
	results := Sweep(len(scenarios), workers, func(i int) ChaosResult {
		return ChaosReplay(scenarios[i], probes, seed)
	})
	return &ChaosReport{Seed: seed, Probes: probes, Results: results}
}

// JSON renders the report as stable, indented JSON — the golden format.
func (r *ChaosReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// ChaosExperiment wraps the harness into the standard Report shape for the
// experiment runner: the JSON is the text artifact, and per-scenario answer
// totals become metrics.
func ChaosExperiment(probes, workers int, seed int64, customSpec string) *Report {
	var rep *ChaosReport
	if customSpec != "" {
		sc := ChaosScenario{
			Name: "custom",
			Spec: customSpec,
			Retry: resolver.RetryPolicy{
				Attempts: 4, Backoff: 200 * time.Millisecond, Jitter: 0.5,
			},
			ServeStale: true,
		}
		rep = &ChaosReport{Seed: seed, Probes: probes,
			Results: []ChaosResult{ChaosReplay(sc, probes, seed)}}
	} else {
		rep = ChaosRun(probes, workers, seed)
	}
	m := map[string]float64{}
	for _, res := range rep.Results {
		answered, total := 0, 0
		for _, r := range res.Rounds {
			answered += r.Answered
			total += rep.Probes
		}
		m["answered_"+res.Scenario] = frac(answered, total)
	}
	return &Report{
		ID:      "chaos harness",
		Title:   "Scripted fault injection vs the resolver retry plane",
		Text:    string(rep.JSON()),
		Metrics: m,
	}
}
