package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"dnsttl/internal/stats"
)

func TestReportCSVAndJSON(t *testing.T) {
	r := &Report{ID: "Figure X", Title: "test", Metrics: map[string]float64{"a": 1}}
	r.AddSeries("short", stats.NewSample(1, 2, 2, 4))
	r.AddSeries("long", stats.NewSample(10, 20))
	r.AddSeries("empty", stats.NewSample()) // ignored

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 3 distinct values of "short" + 2 of "long".
	if len(lines) != 1+3+2 {
		t.Fatalf("csv:\n%s", out)
	}
	if lines[0] != "series,x,cum_fraction" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "short,2,0.75") || !strings.Contains(out, "long,20,1") {
		t.Errorf("csv content wrong:\n%s", out)
	}
	if _, ok := r.Series["empty"]; ok {
		t.Errorf("empty series should not be attached")
	}

	// No series → no output.
	var empty strings.Builder
	if err := (&Report{ID: "t"}).WriteCSV(&empty); err != nil || empty.Len() != 0 {
		t.Errorf("series-less report wrote %q", empty.String())
	}

	// JSON carries id/metrics/text.
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"Figure X"`, `"a":1`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("json missing %s: %s", want, blob)
		}
	}
	if r.Metric("a") != 1 || r.Metric("missing") != 0 {
		t.Errorf("Metric accessor wrong")
	}
	if !strings.Contains(r.String(), "Figure X") {
		t.Errorf("String() = %q", r.String())
	}
}
