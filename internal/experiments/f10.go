package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/stats"
)

// uyCampaign measures .uy NS query latency from a fresh fleet with the
// given child NS TTL.
func uyCampaign(childTTL uint32, probes int, seed int64) ([]atlas.Response, *stats.Sample, map[latency.Region]*stats.Sample) {
	tb := NewTestbed(seed)
	if !tb.Uy.SetTTL(dnswire.NewName("uy"), dnswire.TypeNS, childTTL) {
		panic("uy NS set missing")
	}
	fleet := tb.Fleet(probes, nil, seed)
	resps := fleet.Run(tb.Clock, atlas.Schedule{
		Name: dnswire.NewName("uy"), Type: dnswire.TypeNS,
		Interval: 600 * time.Second, Rounds: 12, Jitter: true,
	})
	all := stats.NewSample()
	byRegion := make(map[latency.Region]*stats.Sample)
	for _, r := range resps {
		if !r.Valid() {
			continue
		}
		all.AddDuration(r.RTT)
		if byRegion[r.Region] == nil {
			byRegion[r.Region] = stats.NewSample()
		}
		byRegion[r.Region].AddDuration(r.RTT)
	}
	return resps, all, byRegion
}

// Figure10 reproduces the .uy natural experiment (§5.3): the same NS .uy
// probing before (child NS TTL 300 s) and after (86400 s) the operator's
// change, as latency CDFs overall and per region.
func Figure10(probes int, seed int64) *Report {
	_, before, beforeRegion := uyCampaign(300, probes, seed)
	_, after, afterRegion := uyCampaign(86400, probes, seed+1)

	fig10a := stats.RenderCDF("Figure 10a: RTT for NS .uy queries, before (TTL 300) vs after (TTL 86400)",
		"RTT (ms)", map[string]*stats.Sample{"TTL 300 (before)": before, "TTL 86400 (after)": after}, 64, true)

	t := &stats.Table{Title: "Figure 10b: RTT quantiles per region (ms)",
		Header: []string{"region", "median before", "median after", "p75 before", "p75 after"}}
	m := map[string]float64{
		"median_ms_before": before.Median(),
		"median_ms_after":  after.Median(),
		"p75_ms_before":    before.Quantile(0.75),
		"p75_ms_after":     after.Quantile(0.75),
		"p95_ms_before":    before.Quantile(0.95),
		"p95_ms_after":     after.Quantile(0.95),
		"p99_ms_before":    before.Quantile(0.99),
		"p99_ms_after":     after.Quantile(0.99),
	}
	improved := 0
	total := 0
	for _, region := range latency.AllRegions {
		b, a := beforeRegion[region], afterRegion[region]
		if b == nil || a == nil || b.Len() == 0 || a.Len() == 0 {
			continue
		}
		total++
		if a.Median() < b.Median() {
			improved++
		}
		t.AddRow(region.String(),
			fmt.Sprintf("%.1f", b.Median()), fmt.Sprintf("%.1f", a.Median()),
			fmt.Sprintf("%.1f", b.Quantile(0.75)), fmt.Sprintf("%.1f", a.Quantile(0.75)))
		m["median_ms_before_"+region.String()] = b.Median()
		m["median_ms_after_"+region.String()] = a.Median()
	}
	m["regions_improved"] = float64(improved)
	m["regions_measured"] = float64(total)

	rep := &Report{
		ID:      "Figure 10",
		Title:   "Longer TTLs cut .uy latency (natural experiment)",
		Text:    fig10a + "\n" + t.String(),
		Metrics: m,
	}
	rep.AddSeries("rtt_ms_before_ttl300", before)
	rep.AddSeries("rtt_ms_after_ttl86400", after)
	return rep
}
