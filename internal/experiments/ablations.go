package experiments

import (
	"fmt"
	"time"

	"dnsttl/internal/atlas"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/population"
	"dnsttl/internal/resolver"
	"dnsttl/internal/stats"
)

// The ablation studies isolate the design choices DESIGN.md §5 calls out:
// each runs the same campaign with one mechanism toggled and reports the
// behavioral difference that mechanism is responsible for.

// singleProfileMix builds a population of one policy.
func singleProfileMix(name string, pol resolver.Policy) population.Mix {
	return population.Mix{{Name: name, Weight: 1, Policy: pol}}
}

// AblationGlueCoupling toggles RefreshGlueOnReferral: with it (the §4.2
// majority behavior) the in-bailiwick switch happens at the NS TTL; without
// it, at the address TTL — a full hour later.
func AblationGlueCoupling(probes int, seed int64) *Report {
	coupled := resolver.DefaultPolicy()
	decoupled := resolver.DefaultPolicy()
	decoupled.RefreshGlueOnReferral = false

	on := runBailiwickMix(true, probes, seed, singleProfileMix("coupled", coupled))
	off := runBailiwickMix(true, probes, seed, singleProfileMix("decoupled", decoupled))

	tbl := &stats.Table{Title: "Glue-refresh ablation (in-bailiwick renumber; fraction on new server)",
		Header: []string{"window", "coupled (refresh)", "decoupled (keep)"}}
	tbl.AddRow("before NS expiry (20-60 min)",
		fmt.Sprintf("%.2f", on.fracNewInWindow(2, 6)), fmt.Sprintf("%.2f", off.fracNewInWindow(2, 6)))
	tbl.AddRow("after NS expiry (70-120 min)",
		fmt.Sprintf("%.2f", on.fracNewInWindow(7, 12)), fmt.Sprintf("%.2f", off.fracNewInWindow(7, 12)))
	tbl.AddRow("after A expiry (130-240 min)",
		fmt.Sprintf("%.2f", on.fracNewInWindow(13, 24)), fmt.Sprintf("%.2f", off.fracNewInWindow(13, 24)))

	return &Report{
		ID:    "Ablation: glue coupling",
		Title: "RefreshGlueOnReferral decides whether NS expiry drags the A record with it",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"coupled_frac_new_after_ns_expiry":   on.fracNewInWindow(7, 12),
			"decoupled_frac_new_after_ns_expiry": off.fracNewInWindow(7, 12),
			"decoupled_frac_new_after_a_expiry":  off.fracNewInWindow(13, 24),
		},
	}
}

// AblationServeStale toggles RFC 8767 serve-stale during an authoritative
// outage: stale answers replace SERVFAILs for anything cached before the
// outage — the paper's §6.1 DDoS-resilience argument.
func AblationServeStale(probes int, seed int64) *Report {
	stale := resolver.DefaultPolicy()
	stale.ServeStale = true
	fresh := resolver.DefaultPolicy()
	run := func(pol resolver.Policy, label string) (validDuringOutage float64, staleAnswers int) {
		tb := NewTestbed(seed)
		fleet := tb.Fleet(probes, singleProfileMix(label, pol), seed)
		const outageRound = 3
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("www.cachetest.net"), Type: dnswire.TypeA,
			Interval: 600 * time.Second, Rounds: 9,
			OnRound: func(r int) {
				if r == outageRound {
					_ = tb.Net.SetDown(tb.RootAddr, true)
					_ = tb.Net.SetDown(tb.NetAddr, true)
					_ = tb.Net.SetDown(tb.CtAddr, true)
				}
			},
		})
		valid, total := 0, 0
		for _, r := range resps {
			if r.Round < outageRound {
				continue
			}
			total++
			if r.Valid() {
				valid++
			}
			if r.Stale {
				staleAnswers++
			}
		}
		return frac(valid, total), staleAnswers
	}
	vOn, staleN := run(stale, "serve-stale")
	vOff, _ := run(fresh, "strict")

	tbl := &stats.Table{Title: "Serve-stale ablation: answer availability during a full outage",
		Header: []string{"policy", "valid answers during outage", "stale answers"}}
	tbl.AddRow("serve-stale (RFC 8767)", fmt.Sprintf("%.1f%%", 100*vOn), stats.FormatCount(staleN))
	tbl.AddRow("strict TTL", fmt.Sprintf("%.1f%%", 100*vOff), "0")

	return &Report{
		ID:    "Ablation: serve-stale",
		Title: "Caching (plus serve-stale) keeps names resolvable through a DDoS",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"valid_frac_serve_stale": vOn,
			"valid_frac_strict":      vOff,
			"stale_answers":          float64(staleN),
		},
	}
}

// AblationPrefetch toggles renew-before-expiry (the Pappas et al. proposal
// from §7): prefetch converts post-expiry misses into hits, paying with
// authoritative queries.
func AblationPrefetch(probes int, seed int64) *Report {
	pre := resolver.DefaultPolicy()
	pre.Prefetch = true
	pre.PrefetchThreshold = 120
	plain := resolver.DefaultPolicy()

	run := func(pol resolver.Policy, label string) (hitFrac float64, authQueries uint64) {
		tb := NewTestbed(seed)
		fleet := tb.Fleet(probes, singleProfileMix(label, pol), seed)
		srv := tb.Servers[tb.CtAddr]
		// www.cachetest.net has TTL 300; probing every 240 s keeps
		// remaining TTLs inside the prefetch threshold window.
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("www.cachetest.net"), Type: dnswire.TypeA,
			Interval: 240 * time.Second, Rounds: 10,
		})
		hits, total := 0, 0
		for _, r := range resps {
			if !r.Valid() {
				continue
			}
			total++
			if r.CacheHit {
				hits++
			}
		}
		return frac(hits, total), srv.QueryCount()
	}
	hOn, qOn := run(pre, "prefetch")
	hOff, qOff := run(plain, "plain")

	tbl := &stats.Table{Title: "Prefetch ablation (TTL 300, probes every 240 s)",
		Header: []string{"policy", "cache-hit fraction", "authoritative queries"}}
	tbl.AddRow("prefetch", fmt.Sprintf("%.2f", hOn), stats.FormatCount(int(qOn)))
	tbl.AddRow("plain", fmt.Sprintf("%.2f", hOff), stats.FormatCount(int(qOff)))

	return &Report{
		ID:    "Ablation: prefetch",
		Title: "Renewing before expiry trades authoritative queries for client hits",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"hit_frac_prefetch":     hOn,
			"hit_frac_plain":        hOff,
			"auth_queries_prefetch": float64(qOn),
			"auth_queries_plain":    float64(qOff),
		},
	}
}

// AblationCapStyle contrasts storage-time caps (BIND max-cache-ttl) with
// serve-time caps (the Google signature of §3.3) on a 345600 s record.
func AblationCapStyle(seed int64) *Report {
	serveCap := resolver.DefaultPolicy()
	serveCap.TTLCap = 21599
	serveCap.CapAtServe = true
	storeCap := resolver.DefaultPolicy()
	storeCap.TTLCap = 21599

	run := func(pol resolver.Policy, label string) (atCap, total int) {
		tb := NewTestbed(seed)
		fleet := tb.Fleet(40, singleProfileMix(label, pol), seed)
		resps := fleet.Run(tb.Clock, atlas.Schedule{
			Name: dnswire.NewName("google.co"), Type: dnswire.TypeNS,
			Interval: 3600 * time.Second, Rounds: 8, // two cap lifetimes
		})
		for _, r := range resps {
			if !r.Valid() {
				continue
			}
			total++
			if r.TTL == 21599 {
				atCap++
			}
		}
		return
	}
	serveAt, serveTotal := run(serveCap, "serve-cap")
	storeAt, storeTotal := run(storeCap, "store-cap")

	tbl := &stats.Table{Title: "Cap-placement ablation (google.co NS, child TTL 345600, cap 21599)",
		Header: []string{"cap style", "answers exactly 21599", "share"}}
	tbl.AddRow("serve-time (Google-like)", stats.FormatCount(serveAt),
		fmt.Sprintf("%.0f%%", 100*frac(serveAt, serveTotal)))
	tbl.AddRow("storage-time (BIND-like)", stats.FormatCount(storeAt),
		fmt.Sprintf("%.0f%%", 100*frac(storeAt, storeTotal)))

	return &Report{
		ID:    "Ablation: cap placement",
		Title: "Serve-time caps pin answers at exactly the cap; storage caps decay",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"at_cap_frac_serve": frac(serveAt, serveTotal),
			"at_cap_frac_store": frac(storeAt, storeTotal),
		},
	}
}
