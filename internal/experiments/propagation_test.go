package experiments

import "testing"

func TestPropagationSweep(t *testing.T) {
	r := PropagationSweep(50, 0, 19)
	// Propagation lag grows with TTL and is on the order of the TTL.
	l60 := r.Metric("lag_min_ttl_60")
	l600 := r.Metric("lag_min_ttl_600")
	l3600 := r.Metric("lag_min_ttl_3600")
	if !(l60 <= l600 && l600 <= l3600) {
		t.Errorf("lag not monotone: %v %v %v", l60, l600, l3600)
	}
	if l60 > 4 {
		t.Errorf("TTL 60: lag = %v min, want ≈1-2", l60)
	}
	if l600 < 5 || l600 > 15 {
		t.Errorf("TTL 600: lag = %v min, want ≈10", l600)
	}
	if l3600 < 45 {
		t.Errorf("TTL 3600: lag = %v min, want ≈60", l3600)
	}
	// Parent-centric and sticky stragglers may remain; the bulk moved.
	if r.Metric("tail_old_ttl_600") > 0.1 {
		t.Errorf("old-share tail at 75 min = %v", r.Metric("tail_old_ttl_600"))
	}
}
