package farm

import (
	"strings"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
)

// TestStatsRates pins the shared divide guard: every fleet rate derives
// from one snapshot through ratio(), and zero traffic means zero rates —
// not NaN — for all of them.
func TestStatsRates(t *testing.T) {
	var empty Stats
	if r := empty.Rates(); r.Hit != 0 || r.Stale != 0 || r.Timeout != 0 {
		t.Fatalf("zero-traffic rates = %+v, want all 0", r)
	}
	if empty.HitRate() != 0 {
		t.Fatal("zero-traffic HitRate must be 0")
	}

	s := Stats{Total: FrontendStats{
		Client: 80, Hits: 50, Stale: 8, Coalesced: 20, Upstream: 200, Timeouts: 10,
	}}
	r := s.Rates()
	if want := float64(50+20) / float64(80+20); r.Hit != want {
		t.Fatalf("Hit = %v, want %v", r.Hit, want)
	}
	if want := 8.0 / 80.0; r.Stale != want {
		t.Fatalf("Stale = %v, want %v", r.Stale, want)
	}
	if want := 10.0 / 200.0; r.Timeout != want {
		t.Fatalf("Timeout = %v, want %v", r.Timeout, want)
	}
	if s.HitRate() != r.Hit {
		t.Fatal("HitRate must delegate to Rates().Hit")
	}
	if out := s.String(); !strings.Contains(out, "hit=0.700") {
		t.Fatalf("fleet table missing rate footer:\n%s", out)
	}
}

// TestFarmRegistryTelemetry checks the registry rebasing: the farm.fe<i>.*
// counters in the registry are the same numbers Stats reports, and the
// frontends share one resolver metric set.
func TestFarmRegistryTelemetry(t *testing.T) {
	w := newWorld(t, []string{"a.example.org", "b.example.org"}, 300)
	reg := obs.NewRegistry(w.clock)
	f := w.farm(Config{
		Frontends: 2,
		Topology:  Shared,
		Placement: PlaceRoundRobin,
		Registry:  reg,
	})

	for _, n := range []string{"a.example.org", "b.example.org", "a.example.org", "b.example.org"} {
		if _, err := f.Resolve(dnswire.NewName(n), dnswire.TypeA); err != nil {
			t.Fatalf("resolve %s: %v", n, err)
		}
	}

	st := f.Stats()
	snap := reg.Snapshot()
	if got, want := snap.Counters["farm.fe0.client"], st.PerFrontend[0].Client; got != want {
		t.Fatalf("farm.fe0.client = %d, registry and Stats disagree (want %d)", got, want)
	}
	if got, want := snap.Counters["farm.fe1.hits"], st.PerFrontend[1].Hits; got != want {
		t.Fatalf("farm.fe1.hits = %d, want %d", got, want)
	}
	if got := snap.Counters[resolver.MetricResolutions]; got != st.Total.Client {
		t.Fatalf("%s = %d, want fleet total %d", resolver.MetricResolutions, got, st.Total.Client)
	}
	if got := snap.Counters[resolver.MetricCacheHits]; got != st.Total.Hits {
		t.Fatalf("%s = %d, want fleet hits %d", resolver.MetricCacheHits, got, st.Total.Hits)
	}
	// The cache gauges bridge the shared store's live stats.
	cs := f.CacheStats()
	if got := snap.Gauges["cache.hits"]; got != float64(cs.Hits) {
		t.Fatalf("cache.hits gauge = %v, want %d", got, cs.Hits)
	}
	if got := snap.Gauges["cache.entries"]; got != float64(cs.Entries) {
		t.Fatalf("cache.entries gauge = %v, want %d", got, cs.Entries)
	}
}

// TestFarmWithoutRegistry keeps the registry optional: a farm built with a
// zero Config still counts via standalone atomics.
func TestFarmWithoutRegistry(t *testing.T) {
	w := newWorld(t, []string{"a.example.org"}, 300)
	f := w.farm(Config{Frontends: 2})
	if _, err := f.Resolve(dnswire.NewName("a.example.org"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Total.Client != 1 {
		t.Fatalf("unregistered farm lost its counters: %+v", f.Stats())
	}
}
