package farm

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
)

// Placement is the load-balancing policy deciding which frontend serves a
// query. The choice is what makes cache fragmentation visible or not: with
// PlaceHashQName every name has a home frontend, so even Private caches see
// each name exactly once; with PlaceRandom a popular name lands on every
// frontend and a Private farm fetches it once per frontend.
type Placement uint8

const (
	// PlaceRandom picks a frontend uniformly at random per query — the ECMP
	// front door most anycast services run.
	PlaceRandom Placement = iota
	// PlaceRoundRobin rotates through the frontends in order.
	PlaceRoundRobin
	// PlaceHashQName places by consistent hash of the query name, so a
	// name keeps its frontend even as the fleet is resized.
	PlaceHashQName
)

// ParsePlacement maps the CLI spellings to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "random":
		return PlaceRandom, nil
	case "roundrobin", "round-robin":
		return PlaceRoundRobin, nil
	case "hash", "qname-hash":
		return PlaceHashQName, nil
	}
	return PlaceRandom, fmt.Errorf("farm: unknown placement %q (want random, roundrobin, or hash)", s)
}

func (p Placement) String() string {
	switch p {
	case PlaceRoundRobin:
		return "roundrobin"
	case PlaceHashQName:
		return "hash"
	}
	return "random"
}

// balancer maps a query name to a frontend index.
type balancer interface {
	pick(name dnswire.Name) int
}

func newBalancer(p Placement, frontends int, seed int64) balancer {
	switch p {
	case PlaceRoundRobin:
		return &rrBalancer{n: uint64(frontends)}
	case PlaceHashQName:
		return newRing(frontends)
	default:
		return &randomBalancer{n: frontends, rng: rand.New(rand.NewSource(seed))}
	}
}

// randomBalancer picks uniformly with a deterministic seeded RNG.
type randomBalancer struct {
	mu  sync.Mutex
	n   int
	rng *rand.Rand
}

func (b *randomBalancer) pick(dnswire.Name) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Intn(b.n)
}

// rrBalancer rotates with an atomic counter.
type rrBalancer struct {
	n    uint64
	next atomic.Uint64
}

func (b *rrBalancer) pick(dnswire.Name) int {
	return int((b.next.Add(1) - 1) % b.n)
}

// vnodesPerFrontend is the ring replication factor; 64 virtual points per
// frontend keep the keyspace split within a few percent of even.
const vnodesPerFrontend = 64

// ring is a consistent-hash ring over the frontends. Points are hashes of
// "frontend-i/vnode-j"; a name goes to the owner of the first point at or
// after its own hash. Resizing the fleet therefore moves only ~1/n of the
// names, unlike modulo hashing which reshuffles nearly all of them.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash     uint64
	frontend int
}

func newRing(frontends int) *ring {
	r := &ring{points: make([]ringPoint, 0, frontends*vnodesPerFrontend)}
	for i := 0; i < frontends; i++ {
		for v := 0; v < vnodesPerFrontend; v++ {
			h := cache.KeyHash(dnswire.Name(fmt.Sprintf("frontend-%d/vnode-%d", i, v)), 0)
			r.points = append(r.points, ringPoint{hash: h, frontend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func (r *ring) pick(name dnswire.Name) int {
	h := cache.KeyHash(name, 0)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].frontend
}
