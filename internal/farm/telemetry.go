package farm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dnsttl/internal/resolver"
)

// FrontendStats is the telemetry of one frontend.
type FrontendStats struct {
	// Client is the number of client resolutions this frontend answered
	// itself (coalesced followers are not counted here).
	Client uint64
	// Hits is how many of those were served from cache.
	Hits uint64
	// Stale counts answers served past their TTL (RFC 8767).
	Stale uint64
	// Coalesced counts resolutions placed on this frontend that instead
	// joined an identical query already in flight somewhere in the farm.
	Coalesced uint64
	// Upstream is the authoritative-query-volume attribution: the number
	// of upstream exchanges this frontend's resolutions cost, which is the
	// load the paper's fragmentation analysis charges to the farm design.
	Upstream uint64
	// Timeouts is how many of those exchanges timed out.
	Timeouts uint64
}

// Stats is the fleet view: one row per frontend plus the aggregate.
type Stats struct {
	PerFrontend []FrontendStats
	Total       FrontendStats
}

// HitRate is the effective fleet cache-hit rate clients observe: hits plus
// coalesced joins (neither costs an iteration) over all resolutions.
func (s Stats) HitRate() float64 {
	n := s.Total.Client + s.Total.Coalesced
	if n == 0 {
		return 0
	}
	return float64(s.Total.Hits+s.Total.Coalesced) / float64(n)
}

// String renders the fleet table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %10s %10s %8s %10s %10s %9s\n",
		"frontend", "client", "hits", "stale", "coalesced", "upstream", "timeouts")
	row := func(label string, f FrontendStats) {
		fmt.Fprintf(&b, "%-9s %10d %10d %8d %10d %10d %9d\n",
			label, f.Client, f.Hits, f.Stale, f.Coalesced, f.Upstream, f.Timeouts)
	}
	for i, f := range s.PerFrontend {
		row(fmt.Sprintf("fe%d", i), f)
	}
	row("total", s.Total)
	return b.String()
}

// feCounters is the lock-free mutable form of FrontendStats.
type feCounters struct {
	client, hits, stale, coalesced, upstream, timeouts atomic.Uint64
}

func (c *feCounters) snapshot() FrontendStats {
	return FrontendStats{
		Client:    c.client.Load(),
		Hits:      c.hits.Load(),
		Stale:     c.stale.Load(),
		Coalesced: c.coalesced.Load(),
		Upstream:  c.upstream.Load(),
		Timeouts:  c.timeouts.Load(),
	}
}

// telemetry holds the farm's per-frontend counters.
type telemetry struct {
	fe []feCounters
}

func newTelemetry(n int) *telemetry {
	return &telemetry{fe: make([]feCounters, n)}
}

// served books one completed resolution's trace to frontend idx.
func (t *telemetry) served(idx int, tr *resolver.Trace) {
	c := &t.fe[idx]
	c.client.Add(1)
	if tr.CacheHit {
		c.hits.Add(1)
	}
	if tr.Stale {
		c.stale.Add(1)
	}
	c.upstream.Add(uint64(tr.Queries))
	c.timeouts.Add(uint64(tr.Timeouts))
}

// coalesced books one join (called at join time, while the leader is still
// in flight).
func (t *telemetry) coalesced(idx int) {
	t.fe[idx].coalesced.Add(1)
}

// Stats snapshots the fleet telemetry.
func (f *Farm) Stats() Stats {
	out := Stats{PerFrontend: make([]FrontendStats, len(f.telemetry.fe))}
	for i := range f.telemetry.fe {
		fe := f.telemetry.fe[i].snapshot()
		out.PerFrontend[i] = fe
		out.Total.Client += fe.Client
		out.Total.Hits += fe.Hits
		out.Total.Stale += fe.Stale
		out.Total.Coalesced += fe.Coalesced
		out.Total.Upstream += fe.Upstream
		out.Total.Timeouts += fe.Timeouts
	}
	return out
}
