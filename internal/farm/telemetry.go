package farm

import (
	"fmt"
	"strings"

	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
)

// FrontendStats is the telemetry of one frontend.
type FrontendStats struct {
	// Client is the number of client resolutions this frontend answered
	// itself (coalesced followers are not counted here).
	Client uint64
	// Hits is how many of those were served from cache.
	Hits uint64
	// Stale counts answers served past their TTL (RFC 8767).
	Stale uint64
	// Coalesced counts resolutions placed on this frontend that instead
	// joined an identical query already in flight somewhere in the farm.
	Coalesced uint64
	// Upstream is the authoritative-query-volume attribution: the number
	// of upstream exchanges this frontend's resolutions cost, which is the
	// load the paper's fragmentation analysis charges to the farm design.
	Upstream uint64
	// Timeouts is how many of those exchanges timed out.
	Timeouts uint64
}

// Stats is the fleet view: one row per frontend plus the aggregate.
type Stats struct {
	PerFrontend []FrontendStats
	Total       FrontendStats
}

// Rates are the fleet-level ratios clients and operators care about, all
// derived from one Stats snapshot so their denominators are consistent.
type Rates struct {
	// Hit is the effective fleet cache-hit rate clients observe: hits plus
	// coalesced joins (neither costs an iteration) over all resolutions.
	Hit float64
	// Stale is the fraction of self-served resolutions answered past their
	// TTL (RFC 8767).
	Stale float64
	// Timeout is the fraction of upstream exchanges that timed out.
	Timeout float64
}

// Rates derives every fleet rate from the snapshot through one divide
// guard, so no rate can disagree with another about what zero traffic means.
func (s Stats) Rates() Rates {
	return Rates{
		Hit:     ratio(s.Total.Hits+s.Total.Coalesced, s.Total.Client+s.Total.Coalesced),
		Stale:   ratio(s.Total.Stale, s.Total.Client),
		Timeout: ratio(s.Total.Timeouts, s.Total.Upstream),
	}
}

// ratio is the single zero-denominator guard behind every fleet rate.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// HitRate is the effective fleet cache-hit rate; see Rates.Hit.
func (s Stats) HitRate() float64 { return s.Rates().Hit }

// ModelStats builds a Stats snapshot from analytically computed totals —
// client resolutions, cache hits, and upstream exchanges — so the workload
// compiler's closed-form output reports through the same Rates arithmetic
// (and the same zero-denominator guard) as a simulated farm. Counts are
// rounded to the nearest whole query.
func ModelStats(client, hits, upstream float64) Stats {
	round := func(x float64) uint64 {
		if x <= 0 {
			return 0
		}
		return uint64(x + 0.5)
	}
	total := FrontendStats{
		Client:   round(client),
		Hits:     round(hits),
		Upstream: round(upstream),
	}
	return Stats{PerFrontend: []FrontendStats{total}, Total: total}
}

// String renders the fleet table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %10s %10s %8s %10s %10s %9s\n",
		"frontend", "client", "hits", "stale", "coalesced", "upstream", "timeouts")
	row := func(label string, f FrontendStats) {
		fmt.Fprintf(&b, "%-9s %10d %10d %8d %10d %10d %9d\n",
			label, f.Client, f.Hits, f.Stale, f.Coalesced, f.Upstream, f.Timeouts)
	}
	for i, f := range s.PerFrontend {
		row(fmt.Sprintf("fe%d", i), f)
	}
	row("total", s.Total)
	return s.rateFooter(&b)
}

func (s Stats) rateFooter(b *strings.Builder) string {
	r := s.Rates()
	fmt.Fprintf(b, "hit=%.3f stale=%.3f timeout=%.3f\n", r.Hit, r.Stale, r.Timeout)
	return b.String()
}

// feCounters is the lock-free mutable form of FrontendStats, built on the
// telemetry plane's counters so a registry-backed farm exposes them at
// /metrics for free.
type feCounters struct {
	client, hits, stale, coalesced, upstream, timeouts *obs.Counter
}

func (c *feCounters) snapshot() FrontendStats {
	return FrontendStats{
		Client:    c.client.Value(),
		Hits:      c.hits.Value(),
		Stale:     c.stale.Value(),
		Coalesced: c.coalesced.Value(),
		Upstream:  c.upstream.Value(),
		Timeouts:  c.timeouts.Value(),
	}
}

// telemetry holds the farm's per-frontend counters. With a registry the
// counters live there under farm.fe<i>.<name>; without one they are
// standalone atomics, so Stats works either way.
type telemetry struct {
	fe []feCounters
}

func newTelemetry(n int, reg *obs.Registry) *telemetry {
	t := &telemetry{fe: make([]feCounters, n)}
	counter := func(i int, name string) *obs.Counter {
		if reg == nil {
			return &obs.Counter{}
		}
		return reg.Counter(fmt.Sprintf("farm.fe%d.%s", i, name))
	}
	for i := range t.fe {
		t.fe[i] = feCounters{
			client:    counter(i, "client"),
			hits:      counter(i, "hits"),
			stale:     counter(i, "stale"),
			coalesced: counter(i, "coalesced"),
			upstream:  counter(i, "upstream"),
			timeouts:  counter(i, "timeouts"),
		}
	}
	return t
}

// served books one completed resolution's trace to frontend idx.
func (t *telemetry) served(idx int, tr *resolver.Trace) {
	c := &t.fe[idx]
	c.client.Inc()
	if tr.CacheHit {
		c.hits.Inc()
	}
	if tr.Stale {
		c.stale.Inc()
	}
	c.upstream.Add(uint64(tr.Queries))
	c.timeouts.Add(uint64(tr.Timeouts))
}

// coalesced books one join (called at join time, while the leader is still
// in flight).
func (t *telemetry) coalesced(idx int) {
	t.fe[idx].coalesced.Inc()
}

// Stats snapshots the fleet telemetry.
func (f *Farm) Stats() Stats {
	out := Stats{PerFrontend: make([]FrontendStats, len(f.telemetry.fe))}
	for i := range f.telemetry.fe {
		fe := f.telemetry.fe[i].snapshot()
		out.PerFrontend[i] = fe
		out.Total.Client += fe.Client
		out.Total.Hits += fe.Hits
		out.Total.Stale += fe.Stale
		out.Total.Coalesced += fe.Coalesced
		out.Total.Upstream += fe.Upstream
		out.Total.Timeouts += fe.Timeouts
	}
	return out
}
