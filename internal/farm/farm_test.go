package farm

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// world is the minimal two-level delegation the farm tests run against:
// a root and an example.org authoritative carrying test names.
type world struct {
	clock   *simnet.VirtualClock
	net     *simnet.Network
	root    netip.Addr
	orgAddr netip.Addr
	orgSrv  *authoritative.Server
}

func newWorld(t testing.TB, names []string, ttl uint32) *world {
	t.Helper()
	w := &world{
		clock:   simnet.NewVirtualClock(),
		net:     simnet.NewNetwork(1),
		root:    netip.MustParseAddr("192.88.30.1"),
		orgAddr: netip.MustParseAddr("192.88.30.2"),
	}
	rootZone := zone.New(dnswire.Root)
	rootZone.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, w.root.String()),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 172800, w.orgAddr.String()),
	)
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 86400, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, w.orgAddr.String()),
	)
	for i, n := range names {
		org.MustAdd(dnswire.NewA(n, ttl, netip.AddrFrom4([4]byte{198, 18, 0, byte(i + 1)}).String()))
	}
	rootSrv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), w.clock)
	rootSrv.AddZone(rootZone)
	w.net.Attach(w.root, rootSrv)
	w.orgSrv = authoritative.NewServer(dnswire.NewName("ns1.example.org"), w.clock)
	w.orgSrv.AddZone(org)
	w.net.Attach(w.orgAddr, w.orgSrv)
	return w
}

func (w *world) farm(cfg Config) *Farm {
	cfg.Policy = resolver.DefaultPolicy()
	return New(cfg, netip.MustParseAddr("10.40.0.1"), w.net, w.clock, []netip.Addr{w.root})
}

var qname = dnswire.NewName("www.example.org")

// TestPrivateTopologyFragments pins the paper's core farm finding at unit
// scale: with private caches, a name queried through every frontend is
// fetched from the authoritatives once per frontend; shared and sharded
// topologies fetch it once for the whole fleet.
func TestPrivateTopologyFragments(t *testing.T) {
	const frontends = 4
	for _, tc := range []struct {
		topo       Topology
		wantUp     uint64 // authoritative exchanges for the A record
		wantHits   uint64
		wantShared bool
	}{
		{topo: Private, wantUp: frontends, wantHits: 0},
		{topo: Shared, wantUp: 1, wantHits: frontends - 1},
		{topo: Sharded, wantUp: 1, wantHits: frontends - 1},
	} {
		t.Run(tc.topo.String(), func(t *testing.T) {
			w := newWorld(t, []string{"www.example.org"}, 3600)
			f := w.farm(Config{Frontends: frontends, Topology: tc.topo, Placement: PlaceRoundRobin, Seed: 7})
			for i := 0; i < frontends; i++ {
				res, err := f.Resolve(qname, dnswire.TypeA)
				if err != nil || len(res.Msg.Answer) == 0 {
					t.Fatalf("resolve %d: %v %v", i, err, res)
				}
			}
			st := f.Stats()
			if st.Total.Hits != tc.wantHits {
				t.Errorf("%s: hits = %d, want %d\n%s", tc.topo, st.Total.Hits, tc.wantHits, st)
			}
			// Each cold iteration costs 2 exchanges (root referral + org
			// answer); every fleet-wide A fetch beyond the first costs 2 more.
			if st.Total.Upstream != 2*tc.wantUp {
				t.Errorf("%s: upstream = %d, want %d\n%s", tc.topo, st.Total.Upstream, 2*tc.wantUp, st)
			}
		})
	}
}

// TestShardedSpreadsKeys checks that the sharded topology actually spreads
// distinct names over distinct shards while keeping each name's entries on
// one shard.
func TestShardedSpreadsKeys(t *testing.T) {
	names := []string{"a.example.org", "b.example.org", "c.example.org", "d.example.org",
		"e.example.org", "f.example.org", "g.example.org", "h.example.org"}
	w := newWorld(t, names, 3600)
	f := w.farm(Config{Frontends: 4, Topology: Sharded, Placement: PlaceHashQName, Seed: 7})
	for _, n := range names {
		if _, err := f.Resolve(dnswire.NewName(n), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	pool, ok := f.store.(*cache.Sharded)
	if !ok || pool.NumShards() != 4 {
		t.Fatalf("store is not a 4-shard pool: %T", f.store)
	}
	occupied, total := 0, 0
	for i := 0; i < 4; i++ {
		l := pool.Shard(i).Len()
		total += l
		if l > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("all keys landed on %d shard(s); want spread over ≥2", occupied)
	}
	if total != f.store.Len() {
		t.Errorf("shard lens sum %d != Len %d", total, f.store.Len())
	}
}

// TestCoalescingCollapsesConcurrentMisses is the acceptance-criteria
// assertion: K concurrent identical cold queries trigger exactly one
// upstream iteration; the other K-1 join the in-flight resolution.
//
// The scenario is made deterministic by gating the authoritative: the
// leader blocks inside its org exchange until all followers have joined
// the flight, so every follower is provably concurrent with it.
func TestCoalescingCollapsesConcurrentMisses(t *testing.T) {
	const clients = 8
	w := newWorld(t, []string{"www.example.org"}, 3600)

	release := make(chan struct{})
	orgQueriesForName := 0
	var gateMu sync.Mutex
	inner := w.orgSrv
	w.net.Attach(w.orgAddr, simnet.HandlerFunc(func(wire []byte, from netip.Addr) []byte {
		if q, err := dnswire.Decode(wire); err == nil && len(q.Question) > 0 &&
			q.Q().Name == qname && q.Q().Type == dnswire.TypeA {
			gateMu.Lock()
			orgQueriesForName++
			gateMu.Unlock()
			<-release
		}
		return inner.ServeDNS(wire, from)
	}))

	f := w.farm(Config{Frontends: 4, Topology: Private, Placement: PlaceRoundRobin, Coalesce: true, Seed: 7})
	results := make([]*resolver.Result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.Resolve(qname, dnswire.TypeA)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}

	// Wait until the leader is blocked upstream and all K-1 followers have
	// joined the flight, then let the single iteration finish.
	key := flightKey{name: qname, qtype: dnswire.TypeA}
	deadline := time.Now().Add(10 * time.Second)
	for f.flight.inFlight(key) < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", f.flight.inFlight(key), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if orgQueriesForName != 1 {
		t.Errorf("authoritative saw %d queries for %s, want 1 (coalesced)", orgQueriesForName, qname)
	}
	leaders, coalesced := 0, 0
	for i, res := range results {
		if res == nil {
			t.Fatalf("client %d got no result", i)
		}
		if len(res.Msg.Answer) == 0 {
			t.Errorf("client %d: empty answer", i)
		}
		if res.Coalesced {
			coalesced++
			if res.Queries != 0 {
				t.Errorf("coalesced result charged %d upstream queries", res.Queries)
			}
		} else if res.Queries > 0 {
			leaders++
		}
	}
	if leaders != 1 || coalesced != clients-1 {
		t.Errorf("leaders=%d coalesced=%d, want 1 and %d", leaders, coalesced, clients-1)
	}
	st := f.Stats()
	if st.Total.Coalesced != clients-1 {
		t.Errorf("telemetry coalesced = %d, want %d\n%s", st.Total.Coalesced, clients-1, st)
	}
	if st.Total.Upstream != 2 {
		t.Errorf("telemetry upstream = %d, want 2 (root + org)\n%s", st.Total.Upstream, st)
	}
}

// TestPlacementDeterminism: the same seed and stream produce the same
// frontend picks, and the hash ring is stable under resize.
func TestPlacementDeterminism(t *testing.T) {
	mk := func() balancer { return newBalancer(PlaceRandom, 8, 42) }
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if x, y := a.pick(qname), b.pick(qname); x != y {
			t.Fatalf("random placement diverged at pick %d: %d vs %d", i, x, y)
		}
	}

	rr := newBalancer(PlaceRoundRobin, 3, 0)
	for i := 0; i < 9; i++ {
		if got := rr.pick(qname); got != i%3 {
			t.Fatalf("round-robin pick %d = %d", i, got)
		}
	}

	// Consistent hash: resizing 8 → 9 frontends must leave most names in
	// place (modulo hashing would move ~8/9 of them).
	r8, r9 := newRing(8), newRing(9)
	moved, total := 0, 2000
	seen := make(map[int]int)
	for i := 0; i < total; i++ {
		n := dnswire.NewName("host" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)) + ".example.org")
		p8 := r8.pick(n)
		seen[p8]++
		if p8 != r9.pick(n) {
			moved++
		}
	}
	if frac := float64(moved) / float64(total); frac > 0.5 {
		t.Errorf("resize moved %.0f%% of names; consistent hashing should move ~1/9", frac*100)
	}
	for fe := 0; fe < 8; fe++ {
		if seen[fe] == 0 {
			t.Errorf("frontend %d received no names from the ring", fe)
		}
	}
	// A name always maps to the same frontend.
	if r8.pick(qname) != r8.pick(qname) {
		t.Error("ring pick is not stable")
	}
}

// TestFarmCacheStatsAggregate: the fleet cache counters add up across
// topologies.
func TestFarmCacheStatsAggregate(t *testing.T) {
	for _, topo := range []Topology{Private, Shared, Sharded} {
		w := newWorld(t, []string{"www.example.org"}, 3600)
		f := w.farm(Config{Frontends: 3, Topology: topo, Placement: PlaceRoundRobin, Seed: 7})
		for i := 0; i < 6; i++ {
			if _, err := f.Resolve(qname, dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
		}
		st := f.CacheStats()
		if st.Entries == 0 || st.Hits == 0 {
			t.Errorf("%s: empty aggregate cache stats: %+v", topo, st)
		}
	}
}

// BenchmarkFarmResolve measures the farm hot path on a warm shared cache —
// the configuration where every query contends on the same store.
func BenchmarkFarmResolve(b *testing.B) {
	for _, topo := range []Topology{Shared, Sharded} {
		b.Run(topo.String(), func(b *testing.B) {
			w := newWorld(b, []string{"www.example.org"}, 86400)
			f := w.farm(Config{Frontends: 8, Topology: topo, Placement: PlaceRoundRobin, Coalesce: true, Seed: 7})
			if _, err := f.Resolve(qname, dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := f.Resolve(qname, dnswire.TypeA); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
