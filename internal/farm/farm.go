// Package farm models a public resolver service the way the paper's §4.4
// infrastructure analysis found them deployed: not one recursive resolver
// but a *farm* of N frontends behind one service address, each running the
// full iterative resolver, with a load balancer deciding which frontend a
// client query lands on and a cache topology deciding how much of the
// fleet's cache those frontends share.
//
// The topology is the whole story of the paper's fragmentation finding:
// with private per-frontend caches a record must be fetched from the
// authoritative servers once per frontend, so short TTLs multiply
// authoritative load by the farm size; with a shared or consistent-hash
// sharded cache the fleet behaves like one big resolver and authoritative
// load is flat in the frontend count. In-flight query coalescing
// (singleflight) closes the remaining gap: concurrent identical misses
// trigger one upstream iteration instead of N.
package farm

import (
	"context"
	"fmt"
	"net/netip"
	"sync"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/middleware"
	"dnsttl/internal/obs"
	"dnsttl/internal/qlog"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Topology selects how much cache the farm's frontends share.
type Topology uint8

const (
	// Private gives every frontend its own cache — the fragmented design
	// whose authoritative-load blowup at short TTLs §4.4 observes.
	Private Topology = iota
	// Shared backs every frontend with one cache (one lock): the fleet
	// acts as a single resolver, at the cost of hot-path contention.
	Shared
	// Sharded backs the fleet with a consistent-hash cache pool
	// (cache.Sharded): shared capacity and hit rate, per-shard locking.
	Sharded
)

// ParseTopology maps the CLI spellings to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "private":
		return Private, nil
	case "shared":
		return Shared, nil
	case "sharded":
		return Sharded, nil
	}
	return Private, fmt.Errorf("farm: unknown cache topology %q (want private, shared, or sharded)", s)
}

func (t Topology) String() string {
	switch t {
	case Shared:
		return "shared"
	case Sharded:
		return "sharded"
	}
	return "private"
}

// Config sizes and shapes a Farm.
type Config struct {
	// Frontends is the number of recursive frontends; values below 1 mean 1.
	Frontends int
	// Topology selects the cache design; see the constants.
	Topology Topology
	// Shards sizes the Sharded pool; 0 means one shard per frontend.
	Shards int
	// Placement decides which frontend serves a query; see Placement.
	Placement Placement
	// Coalesce enables farm-wide singleflight: identical queries arriving
	// while one is in flight wait for its answer instead of iterating.
	Coalesce bool
	// Policy configures every frontend identically.
	Policy resolver.Policy
	// CacheCapacity bounds each cache (per frontend for Private, per shard
	// for Sharded, total for Shared); 0 keeps the cache default.
	CacheCapacity int
	// CacheBytes bounds each cache's memory charge, with the same
	// per-frontend/per-shard/total semantics as CacheCapacity; 0 means
	// unbounded.
	CacheBytes int64
	// Eviction selects the eviction policy of every cache in the fleet;
	// the zero value is the legacy FIFO.
	Eviction cache.EvictionPolicy
	// LocalRoot is the RFC 7706 root mirror handed to every frontend when
	// the policy enables LocalRoot.
	LocalRoot *zone.Zone
	// Seed drives frontend RNGs and the random placement policy.
	Seed int64
	// Registry, when non-nil, backs the fleet telemetry (farm.fe<i>.*
	// counters, resolver.* metrics shared by all frontends, cache.* gauges)
	// so /metrics and the experiments read the same numbers Stats reports.
	Registry *obs.Registry
	// Tracer, when non-nil, records every frontend resolution as a span
	// tree retrievable via /trace.
	Tracer *obs.Tracer
	// QueryLog, when non-nil, is handed to every frontend so each upstream
	// exchange emits one qlog record (attributed per frontend by source
	// address).
	QueryLog *qlog.Tap
}

func (c Config) frontends() int {
	if c.Frontends < 1 {
		return 1
	}
	return c.Frontends
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return c.frontends()
	}
	return c.Shards
}

// Farm is a fleet of recursive frontends behind one load balancer,
// implementing resolver.Lookuper so it drops in anywhere a single
// Resolver or Forwarder does.
type Farm struct {
	cfg       Config
	frontends []*resolver.Resolver
	balancer  balancer
	flight    *flightGroup
	store     cache.Store // nil for Private topology
	telemetry *telemetry
	clock     simnet.Clock

	// Every query flows through a middleware pipeline, one instance per
	// frontend (each frontend is its own process in the deployment the
	// farm models, so stage state — rate-limit buckets, memo caches — is
	// per-frontend). The default pipeline is a single terminal stage
	// wrapping resolveLeg, adding no behavior to the legacy datapath.
	pmu       sync.RWMutex
	pipelines []*middleware.Pipeline
}

// New builds a farm. Frontend i sources its queries from addr+i, so taps
// and authoritative logs can attribute traffic per frontend. The net,
// clock, and roots are shared by all frontends, as in one datacenter.
func New(cfg Config, addr netip.Addr, net simnet.Exchanger, clock simnet.Clock, roots []netip.Addr) *Farm {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	n := cfg.frontends()
	f := &Farm{
		cfg:       cfg,
		frontends: make([]*resolver.Resolver, n),
		balancer:  newBalancer(cfg.Placement, n, cfg.Seed),
		flight:    newFlightGroup(),
		telemetry: newTelemetry(n, cfg.Registry),
		clock:     clock,
	}

	// One storage config for every topology, derived the same way
	// resolver.New derives it from the policy, plus the fleet's bounds.
	ccfg := cfg.Policy.CacheConfig()
	ccfg.Capacity = cfg.CacheCapacity
	ccfg.MaxBytes = cfg.CacheBytes
	ccfg.Eviction = cfg.Eviction
	switch cfg.Topology {
	case Shared:
		f.store = cache.New(clock, ccfg)
	case Sharded:
		f.store = cache.NewSharded(clock, ccfg, cfg.shards())
	}

	// All frontends share one resolver metric set: the fleet is one service,
	// and the paper's quantities (latency, answer TTL, upstream volume) are
	// service-level.
	var met *resolver.Metrics
	if cfg.Registry != nil {
		met = resolver.NewMetrics(cfg.Registry)
	}
	for i := 0; i < n; i++ {
		r := resolver.New(addr, cfg.Policy, net, clock, roots, cfg.Seed+int64(i)*7919)
		r.LocalRootZone = cfg.LocalRoot
		r.Obs = met
		r.Tracer = cfg.Tracer
		r.QLog = cfg.QueryLog
		if f.store != nil {
			r.Cache = f.store
		} else if cfg.CacheCapacity > 0 || cfg.CacheBytes > 0 || cfg.Eviction != cache.EvictFIFO {
			r.Cache = cache.New(clock, ccfg)
		}
		f.frontends[i] = r
		addr = addr.Next()
	}
	f.pipelines = make([]*middleware.Pipeline, n)
	for i := range f.pipelines {
		f.pipelines[i] = middleware.Default(f.env(i))
	}
	cache.Instrument(cfg.Registry, "cache", f.CacheStats)
	return f
}

// env is the middleware environment for frontend idx's pipeline: the
// terminal stage resolves through the frontend's legacy datapath
// (balancer already ran — resolveLeg is post-placement).
func (f *Farm) env(idx int) middleware.Env {
	return middleware.Env{
		Lookup:   f.resolveLeg(idx),
		Clock:    f.clock,
		Registry: f.cfg.Registry,
	}
}

// resolveLeg is frontend idx's raw resolution path — the pre-middleware
// Resolve body: farm-wide singleflight when coalescing is on, then the
// frontend's iterative resolver, then fleet accounting.
func (f *Farm) resolveLeg(idx int) middleware.LookupFunc {
	return func(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error) {
		if !f.cfg.Coalesce {
			res, err := f.frontends[idx].Resolve(name, qtype)
			return f.account(idx, res, err)
		}
		res, err, joined := f.flight.do(flightKey{name: name, qtype: qtype},
			func() { f.telemetry.coalesced(idx) },
			func() (*resolver.Result, error) { return f.frontends[idx].Resolve(name, qtype) })
		if joined {
			if res == nil {
				return nil, err
			}
			// Followers get their own Result value (the message itself is
			// shared, read-only by convention) marked as coalesced: they
			// cost zero upstream queries.
			cp := *res
			cp.CacheHit = false
			cp.Coalesced = true
			cp.Queries = 0
			cp.Timeouts = 0
			cp.Retries = 0
			cp.Hedges = 0
			return &cp, err
		}
		return f.account(idx, res, err)
	}
}

// SetPipeline compiles spec into one pipeline instance per frontend and
// swaps the fleet onto them atomically. An invalid spec changes nothing —
// the SIGHUP-reload contract. The empty spec restores the default
// pipeline.
func (f *Farm) SetPipeline(spec string) error {
	fresh := make([]*middleware.Pipeline, len(f.frontends))
	for i := range fresh {
		p, err := middleware.Build(spec, f.env(i))
		if err != nil {
			return err
		}
		fresh[i] = p
	}
	f.pmu.Lock()
	f.pipelines = fresh
	f.pmu.Unlock()
	return nil
}

// PipelineStages lists the stage names of the active pipeline.
func (f *Farm) PipelineStages() []string {
	f.pmu.RLock()
	defer f.pmu.RUnlock()
	return f.pipelines[0].Stages()
}

// ResolveQuery answers a client query through the frontend the placement
// policy picks, running that frontend's middleware pipeline — the
// datapath behind every farm resolution.
func (f *Farm) ResolveQuery(ctx context.Context, q *middleware.Query) (*middleware.Response, error) {
	idx := f.balancer.pick(q.Name)
	f.pmu.RLock()
	p := f.pipelines[idx]
	f.pmu.RUnlock()
	return p.Resolve(ctx, q)
}

// Frontends returns the farm size.
func (f *Farm) Frontends() int { return len(f.frontends) }

// Frontend exposes frontend i, for tests and telemetry.
func (f *Farm) Frontend(i int) *resolver.Resolver { return f.frontends[i] }

// Resolve answers (name, qtype) through the frontend the placement policy
// picks, running its middleware pipeline (by default a bare wrapper over
// the coalescing resolve path) — resolver.Lookuper for in-process use,
// with no client address for client-keyed stages.
func (f *Farm) Resolve(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error) {
	resp, err := f.ResolveQuery(context.Background(), &middleware.Query{Name: name, Type: qtype})
	if err != nil || resp == nil {
		return nil, err
	}
	return resp.Result, nil
}

// account books one completed (non-coalesced) resolution to frontend idx.
func (f *Farm) account(idx int, res *resolver.Result, err error) (*resolver.Result, error) {
	if res != nil {
		f.telemetry.served(idx, &res.Trace)
	}
	return res, err
}

// Stores returns the fleet's cache stores — the single shared (or sharded)
// store, or one store per frontend for the Private topology. A push
// subscriber purging through exactly this set invalidates the whole fleet,
// whatever the topology.
func (f *Farm) Stores() []cache.Store {
	if f.store != nil {
		return []cache.Store{f.store}
	}
	out := make([]cache.Store, len(f.frontends))
	for i, fe := range f.frontends {
		out[i] = fe.Cache
	}
	return out
}

// SetStaleGate installs g on every frontend, so fleet-wide serve-stale
// decisions consult the push plane's subscription health and purge record.
func (f *Farm) SetStaleGate(g resolver.StaleGate) {
	for _, fe := range f.frontends {
		fe.StaleGate = g
	}
}

// CacheStats aggregates the cache counters of the whole fleet.
func (f *Farm) CacheStats() cache.Stats {
	if f.store != nil {
		return f.store.Stats()
	}
	var out cache.Stats
	for _, fe := range f.frontends {
		st := fe.Cache.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.StaleHits += st.StaleHits
		out.Entries += st.Entries
		out.Bytes += st.Bytes
		out.Prefetches += st.Prefetches
		out.AdmissionRejects += st.AdmissionRejects
	}
	return out
}

var _ resolver.Lookuper = (*Farm)(nil)
