package farm

import (
	"sync"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
)

// flightKey identifies an in-flight resolution farm-wide. Coalescing is
// deliberately keyed across frontends: the point is that N concurrent
// clients asking for the same cold name cost the authoritatives one
// iteration, whichever frontends the balancer spread them over.
type flightKey struct {
	name  dnswire.Name
	qtype dnswire.Type
}

// flightCall is one leader resolution plus everyone waiting on it.
type flightCall struct {
	wg   sync.WaitGroup
	res  *resolver.Result
	err  error
	dups int
}

// flightGroup is a singleflight group over resolutions, in the mold of
// golang.org/x/sync/singleflight but stdlib-only and typed for Results.
type flightGroup struct {
	mu    sync.Mutex
	calls map[flightKey]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[flightKey]*flightCall)}
}

// do runs fn once per key at a time. The first caller (the leader) runs fn;
// callers arriving before it finishes run onJoin and then wait, receiving
// the leader's result with joined=true. onJoin fires at join time — before
// the wait — so telemetry can observe coalescing while the leader is still
// upstream.
func (g *flightGroup) do(k flightKey, onJoin func(), fn func() (*resolver.Result, error)) (res *resolver.Result, err error, joined bool) {
	g.mu.Lock()
	if c, ok := g.calls[k]; ok {
		c.dups++
		g.mu.Unlock()
		onJoin()
		c.wg.Wait()
		return c.res, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[k] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	c.wg.Done()
	return c.res, c.err, false
}

// inFlight reports how many callers are currently waiting on key k (the
// leader excluded) — used by tests to synchronize deterministic coalescing
// scenarios.
func (g *flightGroup) inFlight(k flightKey) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[k]; ok {
		return c.dups
	}
	return 0
}
