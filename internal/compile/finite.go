package compile

import "math"

// finite.go is the compiler's finite-horizon byte-bounded hit model — the
// arithmetic the validation harness holds against the simulated pressure
// grid. It composes the exact renewal forms (ColdMisses,
// PrefetchColdMisses) with the policy physics:
//
//   - fifo: fully closed-form. The horizon splits at the fill time t0
//     (when the cold cache's seen-set first exceeds the byte budget —
//     exact, since residency only grows before any eviction). Before t0
//     the cache is effectively unbounded; after t0 the queue cycles at
//     its steady cycle time L (bisected so the FIFO resident forms fill
//     the budget), and every line runs at the steady hit rate of
//     lifetime min(TTL, L). A line with TTL ≤ L loses nothing: FIFO
//     eviction then only removes entries that are already stale, whose
//     next arrival would have missed anyway.
//   - lru/slru: the transient stepper (TransientCache) runs once bounded
//     and once unbounded, and the exact unbounded hit count is scaled by
//     the stepped bounded/unbounded ratio — the ODE's cold-start
//     smoothing cancels in the ratio, leaving only the eviction physics.
//
// FiniteHitModel returns each line's expected hit count over the horizon
// (representative line; multiply by Count for band totals).
func FiniteHitModel(lines []Line, spec CacheSpec, horizon float64, steps int) []float64 {
	n := len(lines)
	hits := make([]float64, n)
	for i, l := range lines {
		hits[i] = l.Lambda*horizon - PrefetchColdMisses(l.Lambda, l.TTL, spec.PrefetchFrac, horizon)
	}
	if spec.MaxBytes <= 0 {
		return hits
	}
	budget := spec.MaxBytes - spec.BaseBytes
	t0, bites := fillTime(lines, budget, horizon)
	if !bites {
		return hits
	}
	if spec.Policy == "fifo" || spec.Policy == "" {
		fifoFinite(lines, spec, budget, t0, horizon, hits)
		return hits
	}
	if spec.Policy == "lru" && spec.PrefetchFrac > 0 {
		pfFinite(lines, spec, budget, t0, horizon, hits)
		return hits
	}
	// lru — and the open half of slru: exact unbounded hits scaled by the
	// transient stepper's bounded/unbounded ratio.
	lruSpec := spec
	lruSpec.Policy = "lru"
	trB := TransientCache(lines, lruSpec, horizon, steps)
	free := lruSpec
	free.MaxBytes = 0
	trU := TransientCache(lines, free, horizon, steps)
	lruHits := make([]float64, n)
	for i := range lruHits {
		lruHits[i] = hits[i]
		if trU.PerLineHits[i] > 1e-12 {
			r := trB.PerLineHits[i] / trU.PerLineHits[i]
			if r > 1 {
				r = 1
			}
			lruHits[i] *= r
		}
	}
	if spec.Policy != "slru" {
		return lruHits
	}
	// slru: the churn-freeze forms only where the admission vote actually
	// triggers. An insertion walks victims from the probation front —
	// stale victims evict vote-free; the vote fires on the first FRESH
	// victim. Victims sit at idle ≈ the Che characteristic time C, so
	// TTL ≫ C means fresh victims everywhere (full freeze) while TTL ≲ C
	// means victims are long expired and every insertion lands (the
	// simulated 96 KB short-TTL cells run with zero admission rejects
	// and match plain LRU exactly). The freeze weight below is that
	// victim-freshness probability, calibrated against the simulated
	// grid's admission-reject phase boundary: the victim's store age
	// runs about half a C beyond its idle time.
	frozen := append([]float64(nil), hits...)
	if !slruFinite(lines, spec, budget, horizon, frozen) {
		return lruHits
	}
	c := cheTime(lines, budget)
	for i, l := range lines {
		w := 1.0
		if l.TTL > 0 && !math.IsInf(l.TTL, 1) && c > 0 {
			w = 1 - math.Exp(-1.2*(l.TTL/c-0.5))
			if w < 0 {
				w = 0
			}
		}
		hits[i] = w*frozen[i] + (1-w)*lruHits[i]
	}
	return hits
}

// pfFinite is the byte-bounded refresh-ahead LRU model, fully closed
// form. Refresh-ahead guarantees every arrival leaves the entry with
// more than fT of remaining TTL (a refresh leaves the full T, a
// non-refreshing hit only skipped the refresh because remaining
// exceeded fT, and a miss-store leaves T). Under LRU the entry is
// evicted once idle reaches the characteristic time C, so an arrival
// after gap g hits iff g < C and the remaining TTL outlived g:
//
//	C ≤ fT:  every resident arrival is fresh — P(hit) = 1−e^{−λC},
//	         the bare Che form. Eviction is the ONLY loss, and the
//	         freshness refresh-ahead buys is exactly what eviction
//	         destroys (the simulated grid's tight-budget prefetch cell
//	         gains barely half its unbounded lift).
//	C > fT:  gaps in (fT, C) survive freshness with probability
//	         pR + (1−pR)(T−g)/(T−fT) — remaining is T after a refresh
//	         (probability pR = 1−e^{−λfT}), else ~Uniform(fT, T].
//
// Phase 1 (before the fill time t0) is the exact unbounded arithmetic;
// phase 2 runs at min(unbounded steady rate, the per-arrival form
// above) — the min keeps lines the budget never touches on their exact
// unbounded rate.
func pfFinite(lines []Line, spec CacheSpec, budget, t0, horizon float64, hits []float64) {
	c := cheTime(lines, budget)
	f := math.Min(spec.PrefetchFrac, 1)
	for i, l := range lines {
		if l.Lambda <= 0 || l.TTL <= 0 || math.IsInf(l.TTL, 1) || c >= l.TTL {
			continue // eviction at idle ≥ TTL removes only stale entries
		}
		lam, T := l.Lambda, l.TTL
		fT := f * T
		var perArrival float64
		if c <= fT {
			perArrival = -math.Expm1(-lam * c)
		} else {
			pR := -math.Expm1(-lam * fT)
			// ∫_{fT}^{C} λe^{−λg}(T−g)/(T−fT) dg, closed form.
			frag := (math.Exp(-lam*c)*(c-T+1/lam) - math.Exp(-lam*fT)*(fT-T+1/lam)) / (T - fT)
			perArrival = -math.Expm1(-lam*fT) +
				pR*(math.Exp(-lam*fT)-math.Exp(-lam*c)) +
				(1-pR)*frag
		}
		ss := PrefetchSteady(lam, T, f).Hit
		phase1 := lam*t0 - PrefetchColdMisses(lam, T, f, t0)
		h := phase1 + (horizon-t0)*lam*math.Min(ss, perArrival)
		if h < hits[i] {
			hits[i] = h
		}
	}
}

// cheTime is the steady LRU characteristic time: the idle age C at which
// seen-within-C residency fills the byte budget. Residency counts stale
// entries too (an expired entry holds bytes until evicted), so the fill
// equation is TTL-independent: Σ bytes·(1−e^{−λC}) = budget.
func cheTime(lines []Line, budget float64) float64 {
	resAt := func(c float64) float64 {
		b := 0.0
		for _, l := range lines {
			if l.Lambda > 0 {
				b += l.count() * l.Bytes * -math.Expm1(-l.Lambda*c)
			}
		}
		return b
	}
	hi := 1.0
	for i := 0; i < 64 && resAt(hi) < budget; i++ {
		hi *= 2
	}
	if resAt(hi) < budget {
		return math.Inf(1)
	}
	lo := 0.0
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if resAt(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// fillTime is the first time the cold cache's seen-set bytes exceed the
// budget. Before any eviction, line i is resident with probability
// 1−e^{−λt} exactly (first store ~ Exp(λ), nothing leaves), so the fill
// curve needs no stepping. Returns false when the bound never bites.
func fillTime(lines []Line, budget, horizon float64) (float64, bool) {
	seen := func(t float64) float64 {
		b := 0.0
		for _, l := range lines {
			if l.Lambda > 0 {
				b += l.count() * l.Bytes * -math.Expm1(-l.Lambda*t)
			}
		}
		return b
	}
	if seen(horizon) <= budget {
		return 0, false
	}
	lo, hi := 0.0, horizon
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if seen(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, true
}

// fifoFinite overwrites hits with the bounded-FIFO piecewise model:
// exact unbounded arithmetic over (0, t0), steady lifetime-capped rates
// over (t0, horizon). Lines whose TTL the cycle time L outlives keep
// their unbounded hits.
func fifoFinite(lines []Line, spec CacheSpec, budget, t0, horizon float64, hits []float64) {
	resAt := func(l float64) float64 {
		b := 0.0
		for _, ln := range lines {
			b += ln.count() * ln.Bytes * fifoResident(ln.Lambda, ln.TTL, l)
		}
		return b
	}
	hi := 1.0
	for i := 0; i < 64 && resAt(hi) < budget; i++ {
		hi *= 2
	}
	if resAt(hi) < budget {
		return // budget fits even the unbounded steady state
	}
	lo := 0.0
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if resAt(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	L := (lo + hi) / 2
	// The bisected L balances bytes at the STEADY miss rate, but phase 2
	// opens with the tail still cold: first stores inflate the insertion
	// rate above steady, and the queue cycles faster than L for much of
	// the window. Little's law per cycle (resident entries = insertion
	// rate × L) refines L against the phase-2 AVERAGE insertion rate —
	// every miss is a store (new entries, re-stores of stale residents,
	// and re-stores after eviction alike), so the average insertion rate
	// is the phase-2 miss rate under the model itself: iterate to the
	// fixed point.
	entries := 0.0
	for _, l := range lines {
		entries += l.count() * fifoResident(l.Lambda, l.TTL, L)
	}
	phase2Hits := func(L float64, i int) float64 {
		l := lines[i]
		ss := SteadyHit(l.Lambda, math.Min(L, l.TTL))
		if spec.PrefetchFrac > 0 && L > (1-spec.PrefetchFrac)*l.TTL {
			// The refresh window opens before the eviction age, and a
			// refresh re-stores the entry at the queue back — popular lines
			// keep outrunning eviction.
			ss = PrefetchSteady(l.Lambda, l.TTL, spec.PrefetchFrac).Hit
		}
		return (horizon - t0) * l.Lambda * ss
	}
	for iter := 0; iter < 8; iter++ {
		var misses float64
		for i, l := range lines {
			h := phase2Hits(L, i)
			if u := hits[i] - (l.Lambda*t0 - PrefetchColdMisses(l.Lambda, l.TTL, spec.PrefetchFrac, t0)); h > u {
				h = u // cannot beat the unbounded phase-2 hits
			}
			misses += l.count() * (l.Lambda*(horizon-t0) - h)
		}
		if misses <= 0 {
			break
		}
		next := entries * (horizon - t0) / misses
		if math.Abs(next-L) < 1e-3*L {
			L = next
			break
		}
		L = next
	}
	for i, l := range lines {
		if l.Lambda <= 0 || L >= l.TTL {
			// Eviction at age L ≥ TTL only removes stale entries whose next
			// arrival would miss regardless: no hit loss.
			continue
		}
		phase1 := l.Lambda*t0 - PrefetchColdMisses(l.Lambda, l.TTL, spec.PrefetchFrac, t0)
		if h := phase1 + phase2Hits(L, i); h < hits[i] {
			hits[i] = h
		}
	}
}

// slruFinite is the TinyLFU churn-freeze model. Once the byte bound
// bites, insertions only survive by strictly out-voting the first FRESH
// probation victim — ties reject — so membership freezes around the
// names promoted (two lookups) earliest: a first-come set, not the
// top-popularity knapsack. Members are never meaningfully evicted again
// (the simulated grid shows eviction rates two orders below LRU's, with
// the miss traffic converted to admission rejects); a member that
// expires re-stores in place (resident keys skip admission), and at
// short TTLs stale members trade slots among themselves — hit-neutral,
// since the expiry misses are already in the unbounded arithmetic.
// Locked-out names score zero.
//
// Membership weight is P(≥2 arrivals within the lock window τ), with τ
// bisected so expected member bytes fill the budget (members hold their
// bytes stale or fresh). Returns false — caller falls back to the
// transient stepper — when even full membership fits the budget, i.e.
// the freeze never forms.
func slruFinite(lines []Line, spec CacheSpec, budget, horizon float64, hits []float64) bool {
	p2 := func(lw float64) float64 {
		return -math.Expm1(-lw) - lw*math.Exp(-lw)
	}
	memberBytes := func(tau float64) float64 {
		b := 0.0
		for _, l := range lines {
			if l.Lambda > 0 {
				b += l.count() * l.Bytes * p2(l.Lambda*tau)
			}
		}
		return b
	}
	if memberBytes(horizon) <= budget {
		return false
	}
	lo, hi := 0.0, horizon
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if memberBytes(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	tau := (lo + hi) / 2
	for i, l := range lines {
		if l.Lambda <= 0 {
			continue
		}
		hits[i] *= p2(l.Lambda * tau)
	}
	return true
}
