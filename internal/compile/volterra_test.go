package compile

import (
	"math"
	"math/rand"
	"testing"
)

// TestCompositeLineAgainstSimulation pins the Volterra solver to the
// brute-forced composite process across TTL/eviction/prefetch regimes.
func TestCompositeLineAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ lambda, ttl, c, f float64 }{
		{0.5, 60, 20, 0},    // eviction-dominated
		{0.5, 60, 45, 0},    // mixed
		{0.05, 300, 100, 0}, // sparse, eviction binds
		{2, 300, 40, 0},     // hot: eviction nearly irrelevant
		{0.5, 60, 40, 0.5},  // prefetch + eviction
		{0.2, 120, 80, 0.3}, // prefetch + eviction, slower line
	}
	for _, c := range cases {
		const horizon = 2e6
		hits, misses, upstream, prefetch := simLine(rng, c.lambda, c.ttl, c.c, c.f, horizon)
		got := CompositeLine(c.lambda, c.ttl, c.c, c.f, 384)
		simHit := hits / (hits + misses)
		if math.Abs(simHit-got.Hit) > 0.005 {
			t.Errorf("λ=%v T=%v C=%v f=%v: hit %.4f vs volterra %.4f", c.lambda, c.ttl, c.c, c.f, simHit, got.Hit)
		}
		if simUp := upstream / horizon; math.Abs(simUp-got.Upstream) > 0.03*simUp+1e-6 {
			t.Errorf("λ=%v T=%v C=%v f=%v: upstream %.6f vs %.6f", c.lambda, c.ttl, c.c, c.f, simUp, got.Upstream)
		}
		if c.f > 0 {
			if simPf := prefetch / horizon; math.Abs(simPf-got.Prefetch) > 0.05*simPf+1e-6 {
				t.Errorf("λ=%v T=%v C=%v f=%v: prefetch %.6f vs %.6f", c.lambda, c.ttl, c.c, c.f, simPf, got.Prefetch)
			}
		}
	}
}

// TestCompositeLineLimits: the composite solver must agree with the
// closed forms when the idle bound does not bind.
func TestCompositeLineLimits(t *testing.T) {
	for _, lam := range []float64{0.01, 0.3, 2} {
		pure := SteadyHit(lam, 60)
		r := CompositeLine(lam, 60, math.Inf(1), 0, 256)
		if math.Abs(r.Hit-pure) > 1e-9 {
			t.Errorf("λ=%v: unbounded composite hit %.6f vs steady %.6f", lam, r.Hit, pure)
		}
		// A binding idle bound can only lose hits.
		bound := CompositeLine(lam, 60, 10, 0, 256)
		if bound.Hit > pure+1e-9 {
			t.Errorf("λ=%v: eviction increased hit rate: %.6f > %.6f", lam, bound.Hit, pure)
		}
		if bound.Evict < 0 {
			t.Errorf("negative eviction rate %v", bound.Evict)
		}
	}
}

func TestSolveCacheFixedPoint(t *testing.T) {
	// 60 lines with Zipf-ish rates; bytes chosen so the bound binds.
	var lines []Line
	for i := 0; i < 60; i++ {
		lines = append(lines, Line{Lambda: 2 / float64(i+1), TTL: 300, Bytes: 100})
	}
	unbounded := SolveCache(lines, CacheSpec{Policy: "lru", Exact: true})
	if !math.IsInf(unbounded.CharTime, 1) {
		t.Fatalf("unbounded solve should not bind: charTime %v", unbounded.CharTime)
	}
	budget := unbounded.OccBytes * 0.5
	for _, policy := range []string{"fifo", "lru", "slru"} {
		sol := SolveCache(lines, CacheSpec{MaxBytes: budget, Policy: policy, Exact: true})
		if sol.OccBytes > budget*1.02 {
			t.Errorf("%s: occupancy bytes %.0f exceed budget %.0f", policy, sol.OccBytes, budget)
		}
		if policy != "slru" && sol.OccBytes < budget*0.95 {
			t.Errorf("%s: fixed point undershoots budget: %.0f of %.0f", policy, sol.OccBytes, budget)
		}
		if sol.Hit <= 0 || sol.Hit >= unbounded.Hit {
			t.Errorf("%s: bounded hit %.4f should be in (0, %.4f)", policy, sol.Hit, unbounded.Hit)
		}
		// Upstream must cover at least the lost hits.
		if sol.Upstream <= unbounded.Upstream {
			t.Errorf("%s: bounded upstream %.4f should exceed unbounded %.4f", policy, sol.Upstream, unbounded.Upstream)
		}
	}
	// SLRU's knapsack favors the head: its aggregate hit rate should beat
	// FIFO's under the same budget (the retention-dominated regime).
	slru := SolveCache(lines, CacheSpec{MaxBytes: budget, Policy: "slru", Exact: true})
	fifo := SolveCache(lines, CacheSpec{MaxBytes: budget, Policy: "fifo", Exact: true})
	if slru.Hit <= fifo.Hit {
		t.Errorf("slru hit %.4f should beat fifo %.4f under pressure", slru.Hit, fifo.Hit)
	}
}

func TestZipfBands(t *testing.T) {
	n, s := 100000, 1.0
	bands := ZipfBands(n, s, 256)
	// Coverage: bands tile [0,n) exactly and mass sums to 1.
	next := 0
	mass := 0.0
	for _, b := range bands {
		if b.Lo != next || b.Hi <= b.Lo {
			t.Fatalf("bands not contiguous at rank %d", next)
		}
		next = b.Hi
		mass += b.Mass
	}
	if next != n {
		t.Fatalf("bands cover %d of %d ranks", next, n)
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("band mass sums to %v", mass)
	}
	// Banding is logarithmic in n.
	if len(bands) > 256+40 {
		t.Errorf("band count %d not logarithmic", len(bands))
	}
	// Head bands are singletons with exact Zipf mass.
	h1 := 0.0
	for i := 0; i < n; i++ {
		h1 += 1 / float64(i+1)
	}
	if got, want := bands[0].Mass, 1/h1; math.Abs(got-want) > 1e-12 {
		t.Errorf("rank-0 mass %v, want %v", got, want)
	}
	// Per-name rate is non-increasing across bands.
	prev := math.Inf(1)
	for _, b := range bands {
		pn := b.PerName()
		if pn > prev+1e-15 {
			t.Fatalf("per-name mass increases at band [%d,%d)", b.Lo, b.Hi)
		}
		prev = pn
	}
}

// TestBandedAggregationAccuracy: the banded hit rate must track the exact
// per-name sum closely — banding is a compression, not a model change.
func TestBandedAggregationAccuracy(t *testing.T) {
	n := 50000
	totalLambda := 40.0
	ttl := 300.0
	h := 0.0
	hn := 0.0
	for i := 0; i < n; i++ {
		hn += 1 / float64(i+1)
	}
	for i := 0; i < n; i++ {
		p := 1 / float64(i+1) / hn
		h += p * SteadyHit(totalLambda*p, ttl)
	}
	for _, head := range []int{128, 1024} {
		bands := ZipfBands(n, 1.0, head)
		hb := 0.0
		for _, b := range bands {
			pn := b.PerName()
			hb += b.Mass * SteadyHit(totalLambda*pn, ttl)
		}
		if d := math.Abs(hb - h); d > 0.002 {
			t.Errorf("head=%d: banded hit %.5f vs exact %.5f (Δ %.5f)", head, hb, h, d)
		}
	}
}
