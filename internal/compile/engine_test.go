package compile

import (
	"math"
	"testing"
	"time"

	"dnsttl/internal/population"
)

func flatSpec(users float64) Spec {
	flat := make([]float64, 24)
	for i := range flat {
		flat[i] = 1
	}
	return Spec{
		Users:             users,
		QueriesPerUserDay: 100,
		Names:             100000,
		ZipfS:             1.0,
		TTL:               300,
		Diurnal:           flat,
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	base := flatSpec(1e6)
	bad := []func(*Spec){
		func(s *Spec) { s.Users = 0 },
		func(s *Spec) { s.QueriesPerUserDay = -1 },
		func(s *Spec) { s.Names = 0 },
		func(s *Spec) { s.Mix = population.Mix{{Name: "x", Weight: -1}} },
		func(s *Spec) { s.Mix = population.Mix{} },
		func(s *Spec) { s.Regions = []RegionShare{{Name: "EU", Share: 0}} },
		func(s *Spec) { s.Regions = []RegionShare{{Name: "EU", Share: math.NaN()}} },
		func(s *Spec) { s.Diurnal = []float64{1, 2, 3} },
		func(s *Spec) { s.Events = []Event{{AtHours: 99, Kind: "purge"}} },
		func(s *Spec) { s.Events = []Event{{AtHours: 1, Kind: "meteor"}} },
	}
	for i, mut := range bad {
		s := base
		mut(&s)
		if _, err := Compile(s); err == nil {
			t.Errorf("bad spec %d compiled without error", i)
		}
	}
	if _, err := Compile(base); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestCompileLowering(t *testing.T) {
	s := flatSpec(1e6)
	s.Regions = []RegionShare{
		{Name: "EU", Share: 0.7},
		{Name: "NA", Share: 0.3, PhaseHours: -6},
	}
	p, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	// Groups = profiles × regions; users conserved.
	wantGroups := len(population.DefaultMix()) * 2
	if len(p.Groups) != wantGroups {
		t.Errorf("got %d groups, want %d", len(p.Groups), wantGroups)
	}
	users := 0.0
	for _, g := range p.Groups {
		users += g.Users
		if g.Resolvers < 1 || g.BaseLambda <= 0 {
			t.Errorf("group %s/%s: resolvers %v lambda %v", g.Profile, g.Region, g.Resolvers, g.BaseLambda)
		}
		// Per-cell rate respects the cell size: users/resolvers ≤ cap.
		if g.Users/g.Resolvers > 50000+1e-6 {
			t.Errorf("group %s/%s oversizes cells: %v users/cell", g.Profile, g.Region, g.Users/g.Resolvers)
		}
	}
	if math.Abs(users-1e6) > 1 {
		t.Errorf("users not conserved: %v", users)
	}
	// Hourly segments with no events.
	if len(p.Segments) != 24 {
		t.Errorf("got %d segments, want 24", len(p.Segments))
	}
	// Compiled state is compressed: lines ≪ names × groups.
	if p.Lines() >= s.Names {
		t.Errorf("compiled %d lines for %d names — banding ineffective", p.Lines(), s.Names)
	}
}

// TestRunMatchesClosedForm: with a flat diurnal curve, no cache bound and
// no events, the engine must land on the banded Jung closed form exactly
// (the occupancy ODE's only deviation is the cold start, which the
// horizon amortizes).
func TestRunMatchesClosedForm(t *testing.T) {
	s := flatSpec(2e6)
	s.Hours = 24 * 7
	res, err := CompileAndRun(s)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Compile(s)
	want := 0.0
	for _, g := range p.Groups {
		gw := 0.0
		for _, b := range p.Bands {
			gw += b.Mass * SteadyHit(g.BaseLambda*b.PerName(), g.Lifetime)
		}
		want += gw * g.Users
	}
	want /= s.Users
	if got := res.HitRate(); math.Abs(got-want) > 0.003 {
		t.Errorf("engine hit %.5f vs closed form %.5f", got, want)
	}
	// Conservation: answered queries split into hits and misses.
	if d := res.Queries - res.Hits - res.Misses - res.Failed; math.Abs(d) > res.Queries*1e-9 {
		t.Errorf("query conservation violated by %v", d)
	}
	if res.Failed != 0 {
		t.Errorf("no outage but %v failed queries", res.Failed)
	}
	// Total demand ≈ users × rate × horizon.
	wantQ := s.Users * s.QueriesPerUserDay / 86400 * res.VirtualSeconds
	if math.Abs(res.Queries-wantQ) > wantQ*1e-6 {
		t.Errorf("total queries %v, want %v", res.Queries, wantQ)
	}
}

func TestRunDeterministic(t *testing.T) {
	s := flatSpec(1e6)
	s.Diurnal = nil // default two-peak curve
	a, err := CompileAndRun(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CompileAndRun(s)
	if a.Hits != b.Hits || a.Upstream != b.Upstream || a.PeakUpstreamQPS != b.PeakUpstreamQPS {
		t.Errorf("engine not deterministic: %v vs %v", a, b)
	}
}

func TestRunPurgeCostsHits(t *testing.T) {
	s := flatSpec(1e6)
	base, err := CompileAndRun(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Events = []Event{{AtHours: 6, Kind: "purge"}, {AtHours: 12, Kind: "purge"}}
	purged, err := CompileAndRun(s)
	if err != nil {
		t.Fatal(err)
	}
	if purged.Hits >= base.Hits {
		t.Errorf("purges should cost hits: %v vs %v", purged.Hits, base.Hits)
	}
	if purged.Upstream <= base.Upstream {
		t.Errorf("purges should cost upstream refills: %v vs %v", purged.Upstream, base.Upstream)
	}
	if purged.Queries != base.Queries {
		t.Errorf("purges must not change demand: %v vs %v", purged.Queries, base.Queries)
	}
}

func TestRunOutage(t *testing.T) {
	s := flatSpec(1e6)
	s.Events = []Event{{AtHours: 10, Kind: "outage", DurHours: 2}}
	res, err := CompileAndRun(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed <= 0 {
		t.Error("outage produced no failed queries")
	}
	base, _ := CompileAndRun(flatSpec(1e6))
	// Cached entries still serve during the outage: failures are a strict
	// subset of the outage window's demand.
	outageDemand := s.Users * s.QueriesPerUserDay / 86400 * 2 * 3600
	if res.Failed >= outageDemand {
		t.Errorf("all %v outage queries failed — cache served none", res.Failed)
	}
	if res.Upstream >= base.Upstream {
		t.Errorf("outage should reduce upstream: %v vs %v", res.Upstream, base.Upstream)
	}
}

// TestRunPlanetScaleBudget pins the acceptance bound: a 10M-user day
// compiles and runs well under 30s, and the compiled state is a few
// thousand lines, not tens of millions of client objects.
func TestRunPlanetScaleBudget(t *testing.T) {
	s := flatSpec(1e7)
	s.Diurnal = nil
	s.MaxBytes = 4 << 20
	s.Policy = "lru"
	start := time.Now()
	res, err := CompileAndRun(s)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Errorf("10M-user day took %v, budget 30s", elapsed)
	}
	if res.Lines > 200000 {
		t.Errorf("compiled state %d lines — not aggregate", res.Lines)
	}
	if res.HitRate() <= 0 || res.HitRate() >= 1 {
		t.Errorf("implausible hit rate %v", res.HitRate())
	}
	if res.PeakUpstreamQPS <= 0 {
		t.Error("no peak upstream recorded")
	}
	t.Logf("10M-user day in %v: %v", elapsed, res)
}

func TestDefaultDiurnalMeanOne(t *testing.T) {
	d := DefaultDiurnal()
	sum := 0.0
	for _, v := range d {
		if v <= 0 {
			t.Fatalf("non-positive diurnal multiplier %v", v)
		}
		sum += v
	}
	if math.Abs(sum/24-1) > 1e-12 {
		t.Errorf("diurnal mean %v, want 1", sum/24)
	}
}
