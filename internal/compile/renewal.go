// Package compile lowers population-scale workload specifications into
// per-(resolver, qname) renewal processes. Instead of simulating every
// client as an object, each cache line advances by closed-form
// miss-renewal arithmetic — the Jung et al. hit-rate law λT/(1+λT)
// generalized to capped/clamped TTLs, byte-bounded eviction pressure,
// and refresh-ahead prefetch — so a 10M-user day costs seconds of wall
// clock and kilobytes of state. Event-driven stepping is reserved for
// the places aggregation is unsound: diurnal rate changes, purge events,
// and outage windows, where occupancy is advanced by an explicit
// relaxation step between closed-form segments.
//
// The arithmetic here is validated against the repo's own packet-level
// simulations: internal/experiments' validation harness requires the
// compiled hit rates to land within 0.5 hit-points of the simulated
// hitrate, fragmentation, and pressure experiments.
package compile

import "math"

// SteadyHit is the Jung et al. steady-state hit rate of one cache line:
// Poisson arrivals at lambda (queries/s) against a TTL of ttl seconds
// hit with probability λT/(1+λT).
func SteadyHit(lambda, ttl float64) float64 {
	if lambda <= 0 || ttl <= 0 {
		return 0
	}
	x := lambda * ttl
	return x / (x + 1)
}

// SteadyUpstream is the steady-state upstream (miss) rate of one line in
// queries/s: λ/(1+λT).
func SteadyUpstream(lambda, ttl float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if ttl <= 0 {
		return lambda
	}
	return lambda / (1 + lambda*ttl)
}

// PrefetchRates are the steady-state rates of one cache line under
// refresh-ahead prefetch (resolver.Policy.PrefetchFraction semantics: a
// hit with remaining TTL ≤ f·T refreshes the entry).
type PrefetchRates struct {
	// Hit is the client-observed hit rate.
	Hit float64
	// Upstream is the total upstream fetch rate (miss fetches plus
	// refreshes), queries/s.
	Upstream float64
	// Prefetch is the refresh-ahead fetch rate alone, queries/s.
	Prefetch float64
}

// PrefetchSteady solves the refresh-ahead renewal cycle in closed form.
// A cycle runs from one upstream fetch to the next: the entry is fresh
// for (1−f)T before the refresh window opens; by memorylessness the next
// arrival after that is Exp(λ), so E[cycle] = (1−f)T + 1/λ. That arrival
// refreshes (a hit) with probability 1−e^{−λfT}, else the entry expired
// and it misses. Hence exactly one upstream fetch per cycle, and one
// client miss per cycle with probability e^{−λfT}.
func PrefetchSteady(lambda, ttl, frac float64) PrefetchRates {
	if lambda <= 0 || ttl <= 0 {
		return PrefetchRates{}
	}
	if frac <= 0 {
		return PrefetchRates{Hit: SteadyHit(lambda, ttl), Upstream: SteadyUpstream(lambda, ttl)}
	}
	if frac > 1 {
		frac = 1
	}
	cycle := (1-frac)*ttl + 1/lambda
	pRefresh := 1 - math.Exp(-lambda*frac*ttl)
	return PrefetchRates{
		Hit:      1 - (1-pRefresh)/(lambda*cycle),
		Upstream: 1 / cycle,
		Prefetch: pRefresh / cycle,
	}
}

// ColdMisses is the exact expected number of misses one line suffers over
// a finite horizon starting from a cold cache. The k-th miss happens at
// S_k = (k−1)T + Gamma(k, λ) — k−1 full TTL windows, each ended by a
// memoryless wait for the next arrival — so
//
//	E[misses(D)] = Σ_{k≥1} P(Gamma(k,λ) ≤ D − (k−1)T).
//
// The regularized incomplete gamma terms are ≈1 deep below the renewal
// front and ≈0 deep above it, so only O(√(D/T)) terms near the front
// need real evaluation; the horizon-long sums stay cheap. This is what
// makes short validation runs (where the cold-start transient is a large
// fraction of the horizon) comparable to simulation at all.
func ColdMisses(lambda, ttl, horizon float64) float64 {
	if lambda <= 0 || horizon <= 0 {
		return 0
	}
	if ttl <= 0 {
		// No caching: every arrival misses.
		return lambda * horizon
	}
	if ttl >= horizon {
		// Nothing expires inside the window (this also covers ttl = +Inf,
		// where the k−1 = 0 term below would compute 0·∞): the only
		// possible miss is the first arrival, if it lands at all.
		return gammaP(1, lambda*horizon)
	}
	total := 0.0
	for k := 1.0; ; k++ {
		x := horizon - (k-1)*ttl
		if x <= 0 {
			break
		}
		lx := lambda * x
		// Gamma(k,λ) has mean k/λ, sd √k/λ. 12σ+30 past the mean the
		// term is 1 to ~1e-14; the same margin below, it is ~0 and every
		// later term is smaller still.
		margin := 12*math.Sqrt(k) + 30
		switch {
		case lx >= k+margin:
			total++
		case lx <= k-margin:
			return total
		default:
			t := gammaP(k, lx)
			total += t
			if t < 1e-13 {
				return total
			}
		}
	}
	return total
}

// PrefetchColdMisses is the exact expected client-miss count of one
// refresh-ahead line over a finite horizon from a cold cache. Upstream
// events (store or refresh) renew at cycle = (1−f)T + Exp(λ) — the
// ColdMisses structure with ttl = (1−f)T — and a post-first event is a
// client miss iff its closing wait exceeded fT (probability e^{−λfT}).
// Conditioning on the event landing inside the horizon shortens that
// wait, so the miss indicator and the horizon indicator are negatively
// correlated; integrating the joint law gives
//
//	E[misses] = first + e^{−λfT}·(ColdMisses(λ,(1−f)T, D−fT) − P(Exp(λ) ≤ D−fT))
//
// with first = P(Exp(λ) ≤ D) the certain cold-start miss.
func PrefetchColdMisses(lambda, ttl, frac, horizon float64) float64 {
	if lambda <= 0 || horizon <= 0 {
		return 0
	}
	if ttl <= 0 {
		return lambda * horizon
	}
	if frac <= 0 {
		return ColdMisses(lambda, ttl, horizon)
	}
	if frac > 1 {
		frac = 1
	}
	first := -math.Expm1(-lambda * horizon)
	dp := horizon - frac*ttl
	if dp <= 0 {
		return first
	}
	q := math.Exp(-lambda * frac * ttl)
	n := ColdMisses(lambda, (1-frac)*ttl, dp)
	return first + q*(n+math.Expm1(-lambda*dp))
}

// EffectiveLifetime inverts SteadyHit: the TTL at which a pure-TTL line
// would show the given steady hit rate. The pressure model uses it to
// fold eviction losses into an effective lifetime so the exact
// finite-horizon ColdMisses arithmetic applies unchanged.
func EffectiveLifetime(hit, lambda float64) float64 {
	if hit <= 0 || lambda <= 0 {
		return 0
	}
	if hit >= 1 {
		return math.Inf(1)
	}
	return hit / (lambda * (1 - hit))
}

// OccupancyStep advances one line's cache-occupancy probability through a
// segment of dur seconds at constant arrival rate lambda, returning the
// end occupancy and the expected hits and misses during the segment. The
// occupancy ODE occ' = λ(1−occ) − occ/T relaxes toward the steady state
// λT/(1+λT) at rate λ+1/T; its closed-form solution integrates exactly
// over the segment. This is the event-driven path the engine uses where
// rates change (diurnal slices) or state is perturbed (purges, outages);
// it reproduces the renewal steady state but smooths the cold-start
// front (ColdMisses is the exact alternative for constant-rate runs).
// With lambda = 0 the line only decays: occ·e^{−dur/T}, no traffic.
func OccupancyStep(occ, lambda, ttl, dur float64) (end, hits, misses float64) {
	if dur <= 0 {
		return occ, 0, 0
	}
	if ttl <= 0 {
		return 0, 0, lambda * dur
	}
	r := lambda
	ss := 1.0
	if !math.IsInf(ttl, 1) {
		// ttl = +Inf (a never-expiring effective lifetime, e.g. from
		// EffectiveLifetime of a hit rate that rounds to 1) would make the
		// general forms below 0·∞; the limit is ss → 1, r → λ.
		r = lambda + 1/ttl
		ss = lambda * ttl / (1 + lambda*ttl)
	}
	if r <= 0 {
		// No arrivals and no expiry: the line is frozen.
		return occ, 0, 0
	}
	decay := math.Exp(-r * dur)
	end = ss + (occ-ss)*decay
	// ∫occ dt over the segment.
	intOcc := ss*dur + (occ-ss)*(1-decay)/r
	hits = lambda * intOcc
	misses = lambda*dur - hits
	return end, hits, misses
}

// gammaP is the regularized lower incomplete gamma function P(a, x) =
// γ(a,x)/Γ(a), via the standard series (x < a+1) and continued-fraction
// (x ≥ a+1) expansions with log-gamma normalization.
func gammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series: P(a,x) = e^{−x+a·ln x−lnΓ(a)} Σ x^n / (a(a+1)…(a+n)).
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x) by modified Lentz.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
