package compile

import "math"

// LineRates is the steady-state outcome of one composite cache line.
type LineRates struct {
	// Hit is the client hit rate; by PASTA it equals the line's
	// time-average occupancy, which is what the byte fixed point charges.
	Hit float64
	// Upstream is the total upstream fetch rate (miss fetches plus
	// refresh-ahead fetches), queries/s.
	Upstream float64
	// Prefetch is the refresh-ahead fetch rate alone, queries/s.
	Prefetch float64
	// Evict is the idle-eviction rate, events/s: cycles that end with the
	// line going unreferenced past the characteristic time rather than
	// expiring or refreshing.
	Evict float64
	// Cycle is the expected renewal cycle length (miss to miss), seconds.
	Cycle float64
}

// CompositeLine solves one cache line under the full composite process:
// Poisson arrivals at lambda, TTL expiry after ttl seconds, LRU-style
// idle eviction when the line goes unreferenced for evictIdle seconds
// (the Che characteristic time; +Inf disables), and refresh-ahead
// prefetch in the last frac·T of the TTL window (0 disables).
//
// The expected hits from a fresh entry satisfy a renewal (Volterra)
// integral equation in the remaining-TTL coordinate a:
//
//	h(a) = ∫₀^min(C,a) λe^{−λx} · value(a−x) dx
//
// where an arrival after gap x ≤ min(C, a) is a hit; it either lands in
// the refresh window (a−x ≤ f·T: the entry refreshes, restarting at T)
// or just ticks the clock down (value 1+h(a−x)). A gap exceeding C
// evicts; one exceeding a expires. Writing h(a) = u(a) + v(a)·H* for the
// unknown hits-from-fresh H* turns the refresh self-reference into a
// linear solve: H* = u(T)/(1−v(T)), where v(T) is also the probability ρ
// that a window ends in refresh rather than death. Per cycle there are
// then H* hits, 1/(1−ρ) upstream fetches, and (by Wald) λ·E[cycle] =
// H*+1 arrivals. The equation is integrated on a uniform grid with exact
// exponential weights per sub-interval, so hot lines (λ·Δa ≫ 1) lose no
// mass. grid ≤ 0 selects a default balancing cost and accuracy.
func CompositeLine(lambda, ttl, evictIdle, frac float64, grid int) LineRates {
	if lambda <= 0 || ttl <= 0 || evictIdle <= 0 {
		return LineRates{Upstream: math.Max(lambda, 0)}
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// Idle eviction beyond the TTL never fires before expiry, and with no
	// prefetch the closed forms are exact — skip the quadrature.
	if evictIdle >= ttl {
		if frac == 0 {
			up := SteadyUpstream(lambda, ttl)
			return LineRates{Hit: SteadyHit(lambda, ttl), Upstream: up, Cycle: 1 / up}
		}
		// Prefetch with a non-binding idle bound... except an idle gap
		// longer than C inside the (1−f)T fresh window can still evict
		// when C < (1−f)T. evictIdle ≥ ttl > (1−f)T rules that out.
		p := PrefetchSteady(lambda, ttl, frac)
		return LineRates{Hit: p.Hit, Upstream: p.Upstream, Prefetch: p.Prefetch, Cycle: 1 / p.Upstream}
	}
	if grid <= 0 {
		grid = 192
	}
	da := ttl / float64(grid)
	refresh := frac * ttl
	u := make([]float64, grid+1)
	v := make([]float64, grid+1)
	// w(a) = P(the window ends in TTL expiry): reached only while a ≤ C by
	// a gap outliving the remaining TTL, or recursively through ordinary
	// hits. 1 − v(T) − w(T) is then the idle-eviction probability.
	w := make([]float64, grid+1)
	w[0] = 1 // zero TTL remaining: expires immediately
	expAt := func(x float64) float64 { return math.Exp(-lambda * x) }
	for j := 1; j <= grid; j++ {
		a := float64(j) * da
		xMax := math.Min(evictIdle, a)
		// xSplit is where the arrival crosses into the refresh window
		// (r = a − x ≤ f·T); beyond it the integrand is the constant 1.
		xSplit := a - refresh
		var su, sv, sw float64
		// cSelf accumulates the weight the i=0 cell puts on the unknown
		// u[j], v[j], w[j] themselves (x→0 means r→a): the equation is of
		// the second kind there and must be solved implicitly — treating
		// that mass as zero collapses hot lines (λ·da ≫ 1) to a constant.
		var cSelf float64
		for i := 0; float64(i)*da < xMax; i++ {
			x0 := float64(i) * da
			x1 := math.Min(x0+da, xMax)
			cellHi := j - i     // grid index of r at x = x0
			cellLo := j - i - 1 // grid index of r at x = x0+da
			// Hit piece: x ∈ [x0, min(x1, xSplit)], integrand 1 + h(a−x)
			// with h linear between the cell's grid values, weighted by the
			// exact exponential density (zeroth and first moments), so hot
			// lines lose neither mass nor tilt.
			if p1 := math.Min(x1, xSplit); p1 > x0 {
				e0, e1 := expAt(x0), expAt(p1)
				w01 := e0 - e1
				m01 := e0*(x0+1/lambda) - e1*(p1+1/lambda)
				beta := (m01 - x0*w01) / da // weight on the cellLo value
				alpha := w01 - beta         // weight on the cellHi value
				su += w01 + beta*u[cellLo]
				sv += beta * v[cellLo]
				sw += beta * w[cellLo]
				if cellHi == j {
					cSelf += alpha
				} else {
					su += alpha * u[cellHi]
					sv += alpha * v[cellHi]
					sw += alpha * w[cellHi]
				}
			}
			// Refresh piece: x ∈ [max(x0, xSplit), x1] — the hit refreshes
			// the entry (value 1, restart marker), no recursion.
			if p0 := math.Max(x0, xSplit); p0 < x1 {
				wr := expAt(p0) - expAt(x1)
				su += wr
				sv += wr
			}
		}
		if a <= evictIdle {
			// No arrival within the whole remaining TTL: clean expiry.
			sw += expAt(a)
		}
		u[j] = su / (1 - cSelf)
		v[j] = sv / (1 - cSelf)
		w[j] = sw / (1 - cSelf)
	}
	rho := v[grid]
	if rho > 1-1e-9 {
		rho = 1 - 1e-9
	}
	hits := u[grid] / (1 - rho)
	cycle := (hits + 1) / lambda
	// Deaths per cycle = 1; of the per-window outcomes {refresh ρ, expiry
	// w(T), idle eviction 1−ρ−w(T)}, the death is an idle eviction with
	// probability (1−ρ−w(T))/(1−ρ).
	pEvict := (1 - rho - w[grid]) / (1 - rho)
	if pEvict < 0 {
		pEvict = 0
	}
	return LineRates{
		Hit:      hits / (hits + 1),
		Upstream: 1 / ((1 - rho) * cycle),
		Prefetch: rho / ((1 - rho) * cycle),
		Evict:    pEvict / cycle,
		Cycle:    cycle,
	}
}
