package compile

import (
	"fmt"
	"math"
)

// GroupResult is one cohort's accumulated outcome.
type GroupResult struct {
	Profile, Region string
	Queries, Hits   float64
}

// Result is the engine's accumulated outcome over the horizon.
type Result struct {
	// VirtualSeconds is the simulated span; Users the modeled population.
	VirtualSeconds, Users float64
	// Queries, Hits, Misses, Failed are client-side totals. Failed counts
	// queries that missed during an outage window (no upstream to refill
	// from); they are not part of Misses.
	Queries, Hits, Misses, Failed float64
	// Upstream, Prefetches, Evictions are cache-side totals across all
	// resolver cells.
	Upstream, Prefetches, Evictions float64
	// PeakUpstreamQPS is the highest per-segment upstream rate — the
	// authoritative provisioning number.
	PeakUpstreamQPS float64
	// Lines and Resolvers report compiled state size.
	Lines     int
	Resolvers float64
	Groups    []GroupResult
}

// HitRate is hits over answered (non-failed) queries.
func (r *Result) HitRate() float64 {
	if a := r.Queries - r.Failed; a > 0 {
		return r.Hits / a
	}
	return 0
}

// Amplification is upstream fetches per client query — the paper's
// authoritative-load lens: how much of the client demand leaks past the
// caches.
func (r *Result) Amplification() float64 {
	if r.Queries > 0 {
		return r.Upstream / r.Queries
	}
	return 0
}

// memoKey identifies one steady-state cache solve: cohorts with the same
// policy shape and (quantized) cell rate share the solution, which is
// what keeps a 100M-user run at the cost of a few dozen solves.
type memoKey struct {
	policy      string
	prefetch    float64
	lifetime    float64
	maxBytes    float64
	baseBytes   float64
	microLambda int64
}

// Run advances the program through its segments. Within a segment every
// line moves by closed-form occupancy arithmetic toward the segment's
// steady state (solved once per distinct (cohort-class, rate) and
// memoized); purge and outage events — where that aggregation is
// unsound — are handled by explicit state resets and refill-free decay.
func Run(p *Program) (*Result, error) {
	spec := p.Spec
	res := &Result{Users: spec.Users, Lines: p.Lines()}
	occ := make([][]float64, len(p.Groups))
	for gi := range p.Groups {
		occ[gi] = make([]float64, len(p.Bands))
		res.Resolvers += p.Groups[gi].Resolvers
		res.Groups = append(res.Groups, GroupResult{
			Profile: p.Groups[gi].Profile, Region: p.Groups[gi].Region,
		})
	}
	memo := map[memoKey]*Solution{}
	solve := func(g *Group, lambdaCell float64) *Solution {
		key := memoKey{
			policy: g.Cache.Policy, prefetch: g.Cache.PrefetchFrac,
			lifetime: g.Lifetime, maxBytes: g.Cache.MaxBytes, baseBytes: g.Cache.BaseBytes,
			microLambda: int64(lambdaCell * 1e6),
		}
		if s, ok := memo[key]; ok {
			return s
		}
		lines := make([]Line, len(p.Bands))
		for i, b := range p.Bands {
			lines[i] = Line{
				Lambda: lambdaCell * b.PerName(),
				TTL:    g.Lifetime,
				Bytes:  spec.RecordBytes,
				Count:  float64(b.Count()),
			}
		}
		s := SolveCache(lines, g.Cache)
		memo[key] = &s
		return &s
	}

	for _, seg := range p.Segments {
		if seg.PurgeAtStart {
			for gi := range occ {
				for bi := range occ[gi] {
					occ[gi][bi] = 0
				}
			}
		}
		segUpstream := 0.0
		for gi := range p.Groups {
			g := &p.Groups[gi]
			mult := p.Diurnal[((seg.Hour+g.PhaseHours)%24+24)%24]
			lambdaCell := g.BaseLambda * mult
			scale := g.Resolvers // cells are identical; totals scale linearly

			if seg.Outage {
				// Upstream dark: hits drain the decaying cache, misses fail.
				for bi, b := range p.Bands {
					li := lambdaCell * b.PerName()
					n := float64(b.Count()) * scale
					queries := li * seg.Dur * n
					var hits float64
					if g.Lifetime > 0 {
						decay := math.Exp(-seg.Dur / g.Lifetime)
						intOcc := occ[gi][bi] * g.Lifetime * (1 - decay)
						hits = li * intOcc * n
						occ[gi][bi] *= decay
					} else {
						occ[gi][bi] = 0
					}
					res.Queries += queries
					res.Hits += hits
					res.Failed += queries - hits
					res.Groups[gi].Queries += queries
					res.Groups[gi].Hits += hits
				}
				continue
			}

			sol := solve(g, lambdaCell)
			for bi, b := range p.Bands {
				li := lambdaCell * b.PerName()
				n := float64(b.Count()) * scale
				ss := sol.PerLine[bi].Hit
				eff := EffectiveLifetime(ss, li)
				end, hits, misses := OccupancyStep(occ[gi][bi], li, eff, seg.Dur)
				occ[gi][bi] = end
				res.Queries += li * seg.Dur * n
				res.Hits += hits * n
				res.Misses += misses * n
				segUpstream += misses * n
				res.Groups[gi].Queries += li * seg.Dur * n
				res.Groups[gi].Hits += hits * n
				// Prefetch and eviction flow with occupancy: scale the
				// steady rates by the segment's occupancy-to-steady ratio.
				if ss > 0 {
					avgOcc := hits / (li * seg.Dur)
					ratio := math.Min(avgOcc/ss, 1)
					pf := sol.PerLine[bi].Prefetch * seg.Dur * ratio * n
					res.Prefetches += pf
					segUpstream += pf
					res.Evictions += sol.PerLine[bi].Evict * seg.Dur * ratio * n
				}
			}
		}
		res.Upstream += segUpstream
		if seg.Dur > 0 {
			if qps := segUpstream / seg.Dur; qps > res.PeakUpstreamQPS {
				res.PeakUpstreamQPS = qps
			}
		}
		res.VirtualSeconds += seg.Dur
	}
	return res, nil
}

// CompileAndRun is the one-call form: lower the spec, run the program.
func CompileAndRun(spec Spec) (*Result, error) {
	p, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return Run(p)
}

// String summarizes a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("users=%.0f lines=%d hit=%.4f amp=%.4f peakUp=%.0fqps evict=%.0f prefetch=%.0f failed=%.0f",
		r.Users, r.Lines, r.HitRate(), r.Amplification(), r.PeakUpstreamQPS, r.Evictions, r.Prefetches, r.Failed)
}
