package compile

import (
	"fmt"
	"math"

	"dnsttl/internal/population"
)

// RegionShare is one geographic slice of the population.
type RegionShare struct {
	// Name labels the region in results ("EU", "NA", ...).
	Name string
	// Share is the region's fraction of the user base.
	Share float64
	// PhaseHours shifts the diurnal curve for this region's local time.
	PhaseHours int
}

// Event is a point where aggregation is unsound and the engine must step
// explicitly: a cache purge (flush) or an upstream outage window.
type Event struct {
	// AtHours is the event time, hours from the start of the run.
	AtHours float64
	// Kind is "purge" (all caches flushed at AtHours) or "outage"
	// (authoritative servers unreachable for DurHours: cache hits still
	// serve, misses fail, nothing refills).
	Kind string
	// DurHours is the outage length; ignored for purges.
	DurHours float64
}

// Spec is a population-scale workload specification: who queries (users
// × mix × regions), what they query (a Zipf name universe at one
// authoritative TTL), through what (resolver cells of UsersPerResolver
// users each, with byte-bounded caches), and when (a diurnal rate curve
// over a horizon, with optional purge/outage events).
type Spec struct {
	// Users is the modeled user population (1e6–1e8).
	Users float64
	// QueriesPerUserDay is each user's mean DNS demand.
	QueriesPerUserDay float64
	// Mix is the resolver behavioral mix; nil means population.DefaultMix.
	// It must pass population.Mix.Validate.
	Mix population.Mix
	// Regions splits users geographically; empty means one world region.
	// Shares must be positive; they are normalized.
	Regions []RegionShare
	// UsersPerResolver sizes resolver cells; 0 means 50 000 (ISP scale).
	UsersPerResolver float64
	// Names is the Zipf name universe size; ZipfS its exponent.
	Names int
	ZipfS float64
	// HeadExact is the number of exactly-modeled head ranks before
	// geometric banding takes over; 0 means 1024.
	HeadExact int
	// TTL is the workload names' authoritative TTL, seconds.
	TTL uint32
	// RecordBytes is the per-entry cache byte charge
	// (cache.EntryCharge); 0 means 150.
	RecordBytes float64
	// MaxBytes bounds each resolver cell's cache; 0 means unbounded.
	// BaseBytes is the per-cell infrastructure overhead charged first.
	MaxBytes, BaseBytes float64
	// Policy is the cells' eviction policy: "", "fifo", "lru", "slru".
	Policy string
	// PrefetchFrac enables refresh-ahead at this TTL fraction.
	PrefetchFrac float64
	// Hours is the horizon; 0 means 24 (one day).
	Hours int
	// Diurnal is the hourly rate multiplier curve (len 24, mean ≈1);
	// nil means DefaultDiurnal.
	Diurnal []float64
	// Events lists purge/outage points.
	Events []Event
}

// DefaultDiurnal is a two-peak work-day curve (quiet 03:00, peaks late
// morning and evening), mean 1.0.
func DefaultDiurnal() []float64 {
	out := make([]float64, 24)
	sum := 0.0
	for h := 0; h < 24; h++ {
		// Base sinusoid with an evening bump.
		v := 1 + 0.45*math.Sin(2*math.Pi*(float64(h)-9)/24) + 0.25*math.Exp(-sq(float64(h)-20)/8)
		out[h] = v
		sum += v
	}
	for h := range out {
		out[h] *= 24 / sum
	}
	return out
}

func sq(x float64) float64 { return x * x }

// Group is one compiled (profile, region) resolver cohort: Resolvers
// identical cells, each receiving BaseLambda queries/s at diurnal
// multiplier 1, with the profile's policy already lowered to a cache
// lifetime and a per-cell cache spec.
type Group struct {
	Profile, Region string
	// Users and Resolvers size the cohort.
	Users, Resolvers float64
	// BaseLambda is one cell's total client rate at multiplier 1.
	BaseLambda float64
	// Lifetime is the policy-capped cache lifetime of the workload TTL.
	Lifetime float64
	// PhaseHours shifts the diurnal curve for the region.
	PhaseHours int
	// Cache is the per-cell cache configuration.
	Cache CacheSpec
}

// Segment is one constant-rate slice of the horizon.
type Segment struct {
	// Start and Dur are in seconds.
	Start, Dur float64
	// Hour indexes the diurnal curve (before region phase).
	Hour int
	// PurgeAtStart flushes all caches at the segment boundary.
	PurgeAtStart bool
	// Outage marks the upstream dark for the whole segment.
	Outage bool
}

// Program is a compiled spec: cohorts sharing one banded name universe,
// and the segment schedule to advance them through.
type Program struct {
	Spec     Spec
	Groups   []Group
	Bands    []Band
	Segments []Segment
	Diurnal  []float64
}

// Lines is the total number of compiled renewal lines (groups × bands) —
// the state the engine carries instead of per-client objects.
func (p *Program) Lines() int { return len(p.Groups) * len(p.Bands) }

// Compile lowers a spec into a program. It rejects invalid mixes
// (population.Mix.Validate), non-positive region shares, and empty
// populations — the aggregation arithmetic would silently skew on any
// of them.
func Compile(spec Spec) (*Program, error) {
	if spec.Users <= 0 {
		return nil, fmt.Errorf("compile: Users must be positive, got %v", spec.Users)
	}
	if spec.QueriesPerUserDay <= 0 {
		return nil, fmt.Errorf("compile: QueriesPerUserDay must be positive, got %v", spec.QueriesPerUserDay)
	}
	if spec.Names < 1 {
		return nil, fmt.Errorf("compile: Names must be ≥1, got %d", spec.Names)
	}
	mix := spec.Mix
	if mix == nil {
		mix = population.DefaultMix()
	}
	shares, err := mix.Shares()
	if err != nil {
		return nil, err
	}
	regions := spec.Regions
	if len(regions) == 0 {
		regions = []RegionShare{{Name: "world", Share: 1}}
	}
	regionTotal := 0.0
	for _, r := range regions {
		if r.Share <= 0 || math.IsNaN(r.Share) || math.IsInf(r.Share, 0) {
			return nil, fmt.Errorf("compile: region %q has non-positive share %v", r.Name, r.Share)
		}
		regionTotal += r.Share
	}
	if spec.UsersPerResolver <= 0 {
		spec.UsersPerResolver = 50000
	}
	if spec.HeadExact <= 0 {
		spec.HeadExact = 1024
	}
	if spec.RecordBytes <= 0 {
		spec.RecordBytes = 150
	}
	if spec.Hours <= 0 {
		spec.Hours = 24
	}
	diurnal := spec.Diurnal
	if diurnal == nil {
		diurnal = DefaultDiurnal()
	}
	if len(diurnal) != 24 {
		return nil, fmt.Errorf("compile: Diurnal must have 24 entries, got %d", len(diurnal))
	}

	p := &Program{Spec: spec, Diurnal: diurnal}
	p.Bands = ZipfBands(spec.Names, spec.ZipfS, spec.HeadExact)
	qps := spec.QueriesPerUserDay / 86400
	for pi, prof := range mix {
		for _, reg := range regions {
			users := spec.Users * shares[pi] * reg.Share / regionTotal
			if users < 1 {
				continue
			}
			resolvers := math.Ceil(users / spec.UsersPerResolver)
			p.Groups = append(p.Groups, Group{
				Profile:    prof.Name,
				Region:     reg.Name,
				Users:      users,
				Resolvers:  resolvers,
				BaseLambda: users * qps / resolvers,
				Lifetime:   float64(prof.Policy.CacheLifetime(spec.TTL)),
				PhaseHours: reg.PhaseHours,
				Cache: CacheSpec{
					MaxBytes:     spec.MaxBytes,
					BaseBytes:    spec.BaseBytes,
					Policy:       spec.Policy,
					PrefetchFrac: spec.PrefetchFrac,
				},
			})
		}
	}
	if len(p.Groups) == 0 {
		return nil, fmt.Errorf("compile: population too small — no group reaches one user")
	}
	p.Segments, err = buildSegments(spec, diurnal)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// buildSegments slices the horizon hourly and splits further at event
// boundaries, marking outage coverage and purge points.
func buildSegments(spec Spec, diurnal []float64) ([]Segment, error) {
	horizon := float64(spec.Hours) * 3600
	// Collect boundary times: hour marks plus event edges.
	cuts := map[float64]bool{0: true, horizon: true}
	for h := 1; h < spec.Hours; h++ {
		cuts[float64(h)*3600] = true
	}
	type window struct{ start, end float64 }
	var outages []window
	purges := map[float64]bool{}
	for _, ev := range spec.Events {
		at := ev.AtHours * 3600
		if at < 0 || at > horizon {
			return nil, fmt.Errorf("compile: event at %.1fh outside horizon", ev.AtHours)
		}
		switch ev.Kind {
		case "purge":
			cuts[at] = true
			purges[at] = true
		case "outage":
			end := math.Min(at+ev.DurHours*3600, horizon)
			cuts[at], cuts[end] = true, true
			outages = append(outages, window{at, end})
		default:
			return nil, fmt.Errorf("compile: unknown event kind %q", ev.Kind)
		}
	}
	times := make([]float64, 0, len(cuts))
	for t := range cuts {
		times = append(times, t)
	}
	sortFloats(times)
	var segs []Segment
	for i := 0; i+1 < len(times); i++ {
		start, end := times[i], times[i+1]
		if end-start < 1e-9 {
			continue
		}
		seg := Segment{
			Start:        start,
			Dur:          end - start,
			Hour:         int(start/3600) % 24,
			PurgeAtStart: purges[start],
		}
		for _, w := range outages {
			if start >= w.start && end <= w.end {
				seg.Outage = true
			}
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
