package compile

import (
	"math"
	"math/rand"
	"testing"
)

// simLine brute-forces one cache line: Poisson arrivals at lambda against
// TTL ttl, optional idle-eviction bound c and refresh-ahead fraction f,
// over the horizon. Returns hits, misses, upstream fetches, prefetches.
func simLine(rng *rand.Rand, lambda, ttl, c, f, horizon float64) (hits, misses, upstream, prefetch float64) {
	var now, expiry, lastAccess float64
	cached := false
	for {
		now += rng.ExpFloat64() / lambda
		if now > horizon {
			return
		}
		if cached && now-lastAccess > c {
			cached = false // idle eviction
		}
		if cached && now < expiry {
			hits++
			lastAccess = now
			if f > 0 && expiry-now <= f*ttl {
				expiry = now + ttl // refresh-ahead
				prefetch++
				upstream++
			}
		} else {
			misses++
			upstream++
			cached = true
			expiry = now + ttl
			lastAccess = now
		}
	}
}

func TestSteadyHitAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ lambda, ttl float64 }{
		{0.5, 60}, {0.01, 300}, {3, 30}, {0.002, 3600},
	} {
		const horizon = 2e6
		hits, misses, _, _ := simLine(rng, c.lambda, c.ttl, math.Inf(1), 0, horizon)
		got := hits / (hits + misses)
		want := SteadyHit(c.lambda, c.ttl)
		if math.Abs(got-want) > 0.004 {
			t.Errorf("λ=%v T=%v: simulated hit %.4f vs closed form %.4f", c.lambda, c.ttl, got, want)
		}
		up := SteadyUpstream(c.lambda, c.ttl)
		if math.Abs(misses/horizon-up) > 0.004*c.lambda {
			t.Errorf("λ=%v T=%v: simulated upstream %.5f vs %.5f", c.lambda, c.ttl, misses/horizon, up)
		}
	}
}

func TestPrefetchSteadyAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ lambda, ttl, f float64 }{
		{0.5, 60, 0.5}, {0.05, 60, 0.5}, {2, 300, 0.1}, {0.01, 300, 0.9},
	} {
		const horizon = 3e6
		hits, misses, upstream, prefetch := simLine(rng, c.lambda, c.ttl, math.Inf(1), c.f, horizon)
		p := PrefetchSteady(c.lambda, c.ttl, c.f)
		if got := hits / (hits + misses); math.Abs(got-p.Hit) > 0.004 {
			t.Errorf("λ=%v T=%v f=%v: hit %.4f vs %.4f", c.lambda, c.ttl, c.f, got, p.Hit)
		}
		if got := upstream / horizon; math.Abs(got-p.Upstream) > 0.02*p.Upstream+1e-6 {
			t.Errorf("λ=%v T=%v f=%v: upstream %.6f vs %.6f", c.lambda, c.ttl, c.f, got, p.Upstream)
		}
		if got := prefetch / horizon; math.Abs(got-p.Prefetch) > 0.03*p.Prefetch+1e-6 {
			t.Errorf("λ=%v T=%v f=%v: prefetch %.6f vs %.6f", c.lambda, c.ttl, c.f, got, p.Prefetch)
		}
	}
}

func TestColdMissesAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ lambda, ttl, horizon float64 }{
		{0.5, 60, 200},    // a few renewal cycles
		{0.01, 300, 900},  // sparse arrivals
		{2, 30, 5000},     // many cycles: asymptotic regime
		{0.3, 86400, 900}, // TTL beyond horizon: only the first miss
	} {
		const runs = 4000
		total := 0.0
		for r := 0; r < runs; r++ {
			_, m, _, _ := simLine(rng, c.lambda, c.ttl, math.Inf(1), 0, c.horizon)
			total += m
		}
		got := total / runs
		want := ColdMisses(c.lambda, c.ttl, c.horizon)
		tol := 0.02*want + 0.05
		if math.Abs(got-want) > tol {
			t.Errorf("λ=%v T=%v D=%v: simulated %.3f misses vs exact %.3f", c.lambda, c.ttl, c.horizon, got, want)
		}
	}
}

func TestColdMissesProperties(t *testing.T) {
	// Monotone in horizon, approaches steady slope D/(T+1/λ).
	prev := 0.0
	for _, d := range []float64{10, 100, 1000, 10000} {
		m := ColdMisses(0.2, 60, d)
		if m < prev {
			t.Fatalf("ColdMisses not monotone at D=%v", d)
		}
		prev = m
	}
	lambda, ttl := 0.5, 120.0
	slope := (ColdMisses(lambda, ttl, 2e5) - ColdMisses(lambda, ttl, 1e5)) / 1e5
	want := 1 / (ttl + 1/lambda)
	if math.Abs(slope-want) > 1e-4 {
		t.Errorf("steady miss slope %.6f, want %.6f", slope, want)
	}
	if got := ColdMisses(2, 0, 50); got != 100 {
		t.Errorf("zero TTL should miss every arrival: %v", got)
	}
}

func TestGammaP(t *testing.T) {
	// For integer shape a, P(a,x) = 1 − e^{−x} Σ_{k<a} x^k/k! (Erlang CDF)
	// — an independent reference covering the series branch, the
	// continued-fraction branch, and large arguments.
	for _, a := range []int{1, 2, 5, 50, 200, 900} {
		for _, x := range []float64{0.5, float64(a) * 0.9, float64(a), float64(a) * 1.1, float64(a) + 40} {
			want := 1.0
			logTerm := -x // ln(e^{−x}·x⁰/0!)
			sum := 0.0
			for k := 0; k < a; k++ {
				if k > 0 {
					logTerm += math.Log(x) - math.Log(float64(k))
				}
				sum += math.Exp(logTerm)
			}
			want -= sum
			if got := gammaP(float64(a), x); math.Abs(got-want) > 1e-9 {
				t.Errorf("gammaP(%d,%g) = %.12f, want %.12f", a, x, got, want)
			}
		}
	}
}

func TestOccupancyStepConverges(t *testing.T) {
	lambda, ttl := 0.4, 90.0
	ss := SteadyHit(lambda, ttl)
	occ := 0.0
	var totalHits, totalQ float64
	for i := 0; i < 200; i++ {
		end, hits, misses := OccupancyStep(occ, lambda, ttl, 60)
		occ = end
		totalHits += hits
		totalQ += hits + misses
	}
	if math.Abs(occ-ss) > 1e-6 {
		t.Errorf("occupancy %.6f should converge to steady %.6f", occ, ss)
	}
	// Long-run hit fraction approaches the steady value from below
	// (cold start costs extra misses).
	frac := totalHits / totalQ
	if frac >= ss || frac < ss-0.02 {
		t.Errorf("transient-inclusive hit fraction %.4f vs steady %.4f", frac, ss)
	}
	// Decay-only: no arrivals drains occupancy.
	end, hits, _ := OccupancyStep(0.8, 0, ttl, 90)
	if hits != 0 || math.Abs(end-0.8*math.Exp(-1)) > 1e-9 {
		t.Errorf("zero-rate decay wrong: end=%v hits=%v", end, hits)
	}
}

func TestEffectiveLifetimeInverts(t *testing.T) {
	for _, lambda := range []float64{0.01, 0.5, 4} {
		for _, ttl := range []float64{10, 300, 7200} {
			h := SteadyHit(lambda, ttl)
			if got := EffectiveLifetime(h, lambda); math.Abs(got-ttl) > ttl*1e-9 {
				t.Errorf("EffectiveLifetime(SteadyHit(λ=%v,T=%v)) = %v", lambda, ttl, got)
			}
		}
	}
}
