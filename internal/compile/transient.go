package compile

import "math"

// transient.go is the compiler's finite-horizon cache model. The steady
// fixed point in cachemodel.go answers "where does a line set settle";
// this file answers "what happens on the way there", which is what short
// experiment windows and planet-scale warm-up segments are made of.
//
// The crucial piece of physics the steady model cannot express: an
// expired entry keeps occupying cache BYTES until it is evicted or
// replaced. Byte occupancy is therefore a seen-set, not the fresh-entry
// steady state — per line it only grows (insertions) or is cut by
// eviction, never by TTL expiry. Each line carries two probabilities:
//
//	res — the name occupies bytes (resident, fresh OR stale)
//	occ — the name is resident AND fresh (answers hits; occ ≤ res)
//
// Unbounded dynamics: res' = λ(1−res), occ' = λ(1−occ) − occ/T (both
// closed-form per step). When resident bytes exceed the budget, the
// policies diverge:
//
//   - fifo: victims are the least-recently-STORED entries, and a
//     resident entry only re-stores on a miss. A full FIFO is therefore
//     a queue cycling at the insertion rate: EVERY entry — hot or not,
//     fresh or not — is evicted exactly L seconds after its last store,
//     where L is the queue's cycle time. That caps every line's cache
//     lifetime at min(TTL, L), which is why a byte-bound FIFO's hit rate
//     goes flat in TTL once TTL > L (the simulated pressure grid shows
//     identical FIFO hit rates at TTL 30/60/300). L is found by
//     bisection so the policy's resident-probability forms fill the
//     budget exactly.
//   - lru: victims are the longest-idle entries. The resident cap is the
//     Che form 1−e^{−λC}, with the characteristic idle time C bisected
//     so capped bytes fit. A victim sat idle ≥ C, so its store age is at
//     least C: victims are stale-biased, and the fresh mass lost per
//     eviction tapers by (1 − C/T) — at T ≤ C victims are certainly
//     expired and eviction costs no hits at all.
//   - slru: the protected segment (top lines that plausibly earned a
//     promotion, bounded by the entry-capacity split) is exempt; the
//     probation remainder caps like lru; and TinyLFU admission gates
//     one-hit-wonder insertions once the bound is active — a fresh
//     victim wins the admission tie, so a brand-new name only enters
//     when the current victim is stale.
type TransientResult struct {
	// PerLineHits is the expected hit count of one representative line
	// (multiply by Count for band totals).
	PerLineHits []float64
	// Hits, Misses, Evictions, Prefetches are count-weighted totals over
	// the horizon. Upstream = Misses + Prefetches.
	Hits, Misses, Evictions, Prefetches float64
	// FinalBytes is the resident workload byte expectation at the end.
	FinalBytes float64
	// BoundAt is the first time the byte bound bit; −1 if it never did.
	BoundAt float64
}

// Upstream is the total upstream fetch count over the horizon.
func (t *TransientResult) Upstream() float64 { return t.Misses + t.Prefetches }

// transientProtectedMinLookups is the promotion plausibility bar: a line
// needs a second lookup for SLRU to move it to the protected segment.
const transientProtectedMinLookups = 2

// TransientCache runs the finite-horizon aggregate model from a cold
// cache. Lines must be ordered most-popular first (ZipfBands and the
// Zipf mass vectors already are) — the slru protected-segment selection
// relies on it. steps ≤ 0 picks a default resolution.
func TransientCache(lines []Line, spec CacheSpec, horizon float64, steps int) TransientResult {
	if steps <= 0 {
		steps = 256
	}
	dt := horizon / float64(steps)
	n := len(lines)
	out := TransientResult{PerLineHits: make([]float64, n), BoundAt: -1}

	res := make([]float64, n)
	occ := make([]float64, n)
	// mAcc accumulates each line's expected misses, i.e. stores: the
	// FIFO generation-0 queue is discounted by re-stores already made.
	mAcc := make([]float64, n)
	// life folds refresh-ahead into an effective lifetime; pfRate maps
	// occupancy back to the steady prefetch rate for accounting.
	life := make([]float64, n)
	pfRate := make([]float64, n)
	ssHit := make([]float64, n)
	for i, l := range lines {
		life[i] = l.TTL
		if spec.PrefetchFrac > 0 && l.TTL > 0 && l.Lambda > 0 {
			p := PrefetchSteady(l.Lambda, l.TTL, spec.PrefetchFrac)
			life[i] = EffectiveLifetime(p.Hit, l.Lambda)
			pfRate[i] = p.Prefetch
			ssHit[i] = p.Hit
		} else {
			ssHit[i] = SteadyHit(l.Lambda, l.TTL)
		}
	}

	budget := spec.MaxBytes - spec.BaseBytes
	bounded := spec.MaxBytes > 0
	bound := false       // the bound has bitten at least once
	fifoL := math.Inf(1) // FIFO queue cycle time once bound
	isFIFO := spec.Policy == "fifo" || spec.Policy == ""

	// lastProt remembers the protected shares from the latest slru
	// eviction sweep, so admission staleness is judged over the probation
	// population the victims actually come from.
	var lastProt []float64
	// fifoGen is the generation-0 queue: the resident mass stored before
	// the bound first bit, still in its original store order. Lines are
	// popularity-ordered, and first-store times order by popularity, so
	// the front of that queue is the HOTTEST names — stored at t ≈ 0 and,
	// when the TTL outlives the horizon, never re-stored since. The first
	// queue cycle after the bound evicts them in exactly that order; only
	// once the generation has drained (by eviction, or by re-stores
	// converting it to steady churn) does the quasi-steady cycle-time cap
	// describe the queue.
	var fifoGen []float64

	for s := 0; s < steps; s++ {
		elapsed := float64(s) * dt
		// Stale fraction of unprotected resident bytes — the probability a
		// probation victim carries no fresh value and is evicted without
		// an admission vote.
		stale := transientStaleFrac(lines, res, occ, lastProt)
		for i := range lines {
			l := &lines[i]
			if l.Lambda <= 0 || life[i] <= 0 {
				continue
			}
			gate := 1.0
			if spec.Policy == "slru" && bound && l.Lambda*math.Max(elapsed, dt) < transientProtectedMinLookups {
				// TinyLFU admission: the candidate's sketch estimate must
				// STRICTLY exceed the first fresh victim's. Fresh probation
				// victims are overwhelmingly old count-1 tail names, so any
				// candidate with two expected lookups wins the vote; a
				// one-hit wonder ties the count-1 victim and ties reject —
				// it only enters when the victim is stale (stale victims
				// are evicted without a vote).
				gate = stale
			}
			res[i] += (1 - res[i]) * (1 - math.Exp(-l.Lambda*gate*dt))
			lt := life[i]
			if isFIFO && bound && fifoL < lt {
				lt = fifoL
			}
			// A gated line's freshness refills at the admitted rate only
			// (rejected insertions store nothing), but its arrivals still
			// query at full λ: rescale the step's hits back to λ·∫occ.
			end, h, m := OccupancyStep(occ[i], l.Lambda*gate, lt, dt)
			if gate < 1 {
				if gate > 0 {
					h /= gate
				}
				m = l.Lambda*dt - h
			}
			if end > res[i] {
				// Residency caps freshness. The ODE path overshoots the cap
				// inside the step before this clamp; shave the overshoot
				// triangle off the step's hits (linear-path approximation).
				if end > occ[i] {
					over := (end - res[i]) * (end - res[i]) / (end - occ[i])
					h -= l.Lambda * over * dt / 2
					if h < 0 {
						h = 0
					}
					m = l.Lambda*dt - h
				}
				end = res[i]
			}
			occ[i] = end
			if fifoGen != nil && fifoGen[i] > 0 {
				// Re-stores (misses of a resident line) move entries to the
				// queue back, converting generation-0 mass to steady churn.
				fifoGen[i] *= math.Exp(-l.Lambda * (1 - occ[i]) * dt)
			}
			out.PerLineHits[i] += h
			out.Hits += h * l.count()
			out.Misses += m * l.count()
			mAcc[i] += m
			if pfRate[i] > 0 && ssHit[i] > 0 {
				ratio := math.Min(occ[i]/ssHit[i], 1)
				out.Prefetches += pfRate[i] * ratio * dt * l.count()
			}
		}
		if !bounded {
			continue
		}
		total := residentBytes(lines, res)
		if total <= budget {
			continue
		}
		if !bound {
			bound = true
			out.BoundAt = elapsed
		}
		var ev float64
		switch {
		case isFIFO:
			if fifoGen == nil {
				// Only mass still at its FIRST store position drains in
				// popularity order; anything re-stored since (expected
				// re-stores = misses − 1) has already joined the steady
				// churn at the queue back.
				fifoGen = make([]float64, n)
				for i := range fifoGen {
					fifoGen[i] = res[i] * math.Exp(-math.Max(0, mAcc[i]-1))
				}
			}
			if drainFIFOGen(lines, res, occ, fifoGen, total-budget, &ev) {
				var rest float64
				fifoL, rest = evictFIFO(lines, res, occ, life, budget)
				ev += rest
			}
		case spec.Policy == "slru":
			_, ev, lastProt = evictSLRU(lines, res, occ, life, spec, budget, elapsed)
		default: // lru
			_, ev = evictByIdle(lines, res, occ, life, nil, spec.PrefetchFrac, budget, elapsed)
		}
		out.Evictions += ev
	}
	out.FinalBytes = residentBytes(lines, res)
	return out
}

// drainFIFOGen evicts over bytes from the generation-0 queue in store
// order (line order: hottest stored first). Generation-0 victims carry
// their line's current fresh share — when the TTL outlives the run they
// are fresh hot entries, and evicting them is exactly the FIFO transient
// pathology. Returns true when the generation is exhausted and the
// caller should fall through to the quasi-steady queue model.
func drainFIFOGen(lines []Line, res, occ, gen []float64, over float64, ev *float64) bool {
	for i := range lines {
		if over <= 0 {
			return false
		}
		g := math.Min(gen[i], res[i])
		gen[i] = g
		if g <= 0 {
			continue
		}
		avail := g * lines[i].Bytes * lines[i].count()
		take := math.Min(avail, over)
		e := take / avail * g
		fresh := 0.0
		if res[i] > 0 {
			fresh = occ[i] / res[i]
		}
		occ[i] -= e * fresh
		if occ[i] < 0 {
			occ[i] = 0
		}
		res[i] -= e
		gen[i] -= e
		*ev += e * lines[i].count()
		over -= take
	}
	return over > 0
}

func residentBytes(lines []Line, res []float64) float64 {
	b := 0.0
	for i := range lines {
		b += res[i] * lines[i].Bytes * lines[i].count()
	}
	return b
}

// transientStaleFrac is the stale share of resident bytes: 1 − occ/res,
// byte-weighted. A non-nil prot vector discounts each line's protected
// share, leaving the staleness of the probation population.
func transientStaleFrac(lines []Line, res, occ, prot []float64) float64 {
	var r, o float64
	for i := range lines {
		w := lines[i].Bytes * lines[i].count()
		if prot != nil {
			w *= 1 - prot[i]
		}
		r += res[i] * w
		o += occ[i] * w
	}
	if r <= 0 {
		return 1
	}
	return 1 - o/r
}

// fifoResident is the steady resident probability of one line in a FIFO
// queue with cycle time L: an entry lives exactly L seconds from its
// last store. For L ≤ T the entry is re-stored by the first arrival
// after eviction (cycle L + Exp(λ), fresh while resident); for L > T the
// first arrival after expiry re-stores it in place if it beats the
// eviction (cycle T + Exp(λ), resident min(L, cycle) of it).
func fifoResident(lambda, ttl, L float64) float64 {
	if lambda <= 0 || L <= 0 {
		return 0
	}
	if L <= ttl || math.IsInf(ttl, 1) {
		return lambda * L / (1 + lambda*L)
	}
	return (ttl + (1-math.Exp(-lambda*(L-ttl)))/lambda) / (ttl + 1/lambda)
}

// evictFIFO finds the queue cycle time L at which the FIFO resident
// probabilities fill the budget exactly, and caps each line's residency
// there. The returned L feeds back as a lifetime cap on every line.
func evictFIFO(lines []Line, res, occ, life []float64, budget float64) (L, evictions float64) {
	cappedBytes := func(l float64) float64 {
		b := 0.0
		for i := range lines {
			b += math.Min(res[i], fifoResident(lines[i].Lambda, life[i], l)) *
				lines[i].Bytes * lines[i].count()
		}
		return b
	}
	hi := 1.0
	for iter := 0; iter < 64 && cappedBytes(hi) < budget; iter++ {
		hi *= 2
	}
	if cappedBytes(hi) < budget {
		return math.Inf(1), 0
	}
	lo := 0.0
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if cappedBytes(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	L = (lo + hi) / 2
	for i := range lines {
		if limit := fifoResident(lines[i].Lambda, life[i], L); res[i] > limit {
			evictions += (res[i] - limit) * lines[i].count()
			res[i] = limit
			if occ[i] > res[i] {
				occ[i] = res[i]
			}
		}
	}
	return L, evictions
}

// evictByIdle is the LRU order: cap each line's residency at the Che form
// 1−e^{−λC}, bisecting the characteristic idle time C so capped resident
// bytes meet the budget. protFrac (nil for plain lru) exempts each
// line's protected share. A victim sat idle ≥ C before eviction, so its
// store age is at least C + the age of its last store at that final
// arrival — roughly uniform over the window entries can actually span,
// min(T, elapsed). The fresh mass lost per eviction therefore tapers by
// (T−C)/min(T, elapsed): zero when entries certainly expire before they
// idle out (T ≤ C), one when the TTL outlives the whole run so far
// (nothing resident has ever expired).
func evictByIdle(lines []Line, res, occ, life, protFrac []float64, pfFrac, budget, elapsed float64) (charTime, evictions float64) {
	capAt := func(i int, c float64) float64 {
		v := 1 - math.Exp(-lines[i].Lambda*c)
		if protFrac != nil {
			v = protFrac[i] + (1-protFrac[i])*v
		}
		if v > 1 {
			v = 1
		}
		return v
	}
	cappedBytes := func(c float64) float64 {
		b := 0.0
		for i := range lines {
			b += math.Min(res[i], capAt(i, c)) * lines[i].Bytes * lines[i].count()
		}
		return b
	}
	hi := 1.0
	for iter := 0; iter < 64 && cappedBytes(hi) < budget; iter++ {
		hi *= 2
	}
	if cappedBytes(hi) < budget {
		// Even uncapped residency fits (caller overshoot was tiny).
		return hi, 0
	}
	lo := 0.0
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if cappedBytes(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	c := (lo + hi) / 2
	for i := range lines {
		limit := capAt(i, c)
		if res[i] <= limit {
			continue
		}
		e := res[i] - limit
		// Freshness is judged against the RAW TTL even when refresh-ahead
		// folds into a longer effective lifetime: a victim sat idle ≥ C,
		// and an idle entry is never prefetch-refreshed.
		rawT := lines[i].TTL
		if rawT <= 0 {
			rawT = life[i]
		}
		freshFrac := 0.0
		if res[i] > 0 && rawT > 0 {
			span := math.Min(rawT, elapsed)
			taper := 1.0 // rawT = +Inf: never-expiring victims are fresh
			if span > 0 && !math.IsInf(rawT, 1) {
				taper = (rawT - c) / span
				if pfFrac > 0 {
					// Refresh-ahead reshapes the victim's remaining TTL at
					// its last arrival: a refresh (probability 1−e^{−λfT})
					// left the full T, a non-refreshing hit left
					// Uniform((1−f)T, T]. The victim then idles C plus a
					// memoryless Exp(λ) overshoot before the fluid cap trims
					// it, so its fresh probability is
					// P(C + Exp(λ) < remaining), integrated over that
					// remaining-TTL mixture. This is what makes bounded
					// prefetch cheaper than its unbounded gain: the fresh
					// value refresh-ahead buys is exactly what eviction
					// destroys.
					lam := lines[i].Lambda
					fT := pfFrac * rawT
					taper = 0
					if rawT > c {
						pR := -math.Expm1(-lam * fT)
						a := math.Max(c, rawT-fT)
						j := 0.0
						if rawT > a && fT > 0 {
							j = ((rawT - a) - (math.Exp(-lam*(a-c))-math.Exp(-lam*(rawT-c)))/lam) / fT
						}
						taper = pR*(-math.Expm1(-lam*(rawT-c))) + (1-pR)*j
					}
				}
			}
			if taper < 0 {
				taper = 0
			} else if taper > 1 {
				taper = 1
			}
			freshFrac = occ[i] / res[i] * taper
		}
		occ[i] -= e * freshFrac
		res[i] = limit
		if occ[i] < 0 {
			occ[i] = 0
		}
		if occ[i] > res[i] {
			occ[i] = res[i]
		}
		evictions += e * lines[i].count()
	}
	return c, evictions
}

// evictSLRU exempts the protected segment and applies the LRU cap to the
// probation remainder. Membership is per-generation: promotion needs a
// second lookup while the entry is resident, and a refresh Put demotes
// the entry back to probation, so a line is protected with the
// probability of ≥2 arrivals inside one TTL generation (clamped to the
// elapsed run). Crucially, protection shields the line's FULL resident
// share, stale included: eviction victims come from the probation front,
// so an expired protected entry keeps hoarding its bytes until its next
// lookup demotes it — and the demoting Put immediately re-stores it
// anyway. The segment is bounded by the 80 % entry-capacity split and by
// the byte budget itself; when the workload's warm set is entry-dense
// enough (as in the pressure grid, where bytes bind far below the entry
// capacity), the protected segment can swallow the whole budget and
// probation fluid-shrinks to nothing — which is exactly how the real
// evictor degenerates, and why simulated SLRU trails plain LRU on this
// grid's short-TTL cells.
func evictSLRU(lines []Line, res, occ, life []float64, spec CacheSpec, budget, elapsed float64) (charTime, evictions float64, protFrac []float64) {
	const protectedFraction = 0.8 // mirrors cache/evict.go
	protEntries := math.Inf(1)
	if spec.MaxEntries > 0 {
		protEntries = protectedFraction * spec.MaxEntries
	}
	protFrac = make([]float64, len(lines))
	var cumE, cumB float64
	for i := range lines {
		l := &lines[i]
		w := elapsed
		if l.TTL > 0 && l.TTL < w {
			w = l.TTL
		}
		lw := l.Lambda * w
		// P(≥2 arrivals in the promotion window): Poisson tail.
		p2 := -math.Expm1(-lw) - lw*math.Exp(-lw)
		if p2 < 0.01 {
			break // popularity-ordered: nothing later promotes either
		}
		take := l.count() * math.Min(p2, res[i])
		if room := protEntries - cumE; take > room {
			take = room
		}
		if l.Bytes > 0 {
			if room := (budget - cumB) / l.Bytes; take > room {
				take = room
			}
		}
		if take <= 0 {
			break
		}
		protFrac[i] = take / l.count()
		cumE += take
		cumB += take * l.Bytes
	}
	charTime, evictions = evictByIdle(lines, res, occ, life, protFrac, spec.PrefetchFrac, budget, elapsed)
	return charTime, evictions, protFrac
}
