package compile

import "math"

// Band is a contiguous run of Zipf popularity ranks compiled into one
// aggregate line: every rank in [Lo, Hi) shares the band's per-name rate.
type Band struct {
	// Lo and Hi bound the ranks (0-based, most popular first), half-open.
	Lo, Hi int
	// Mass is the band's total probability mass.
	Mass float64
}

// Count is the number of names in the band.
func (b Band) Count() int { return b.Hi - b.Lo }

// PerName is the probability mass of one representative name in the band.
func (b Band) PerName() float64 { return b.Mass / float64(b.Count()) }

// ZipfBands partitions n Zipf(s)-distributed ranks into bands: the
// headExact most popular ranks get singleton bands (their rates differ
// enough that aggregation would distort the head, which carries most of
// the traffic), and the tail is covered by geometrically widening bands
// whose within-band rate spread is bounded by the width ratio. Memory
// and compute then scale with O(headExact + log n) instead of n, which
// is what lets a 10⁷-name universe compile to a few hundred lines.
func ZipfBands(n int, s float64, headExact int) []Band {
	if n < 1 {
		n = 1
	}
	if headExact < 1 {
		headExact = 1
	}
	if headExact > n {
		headExact = n
	}
	weight := func(rank int) float64 { // 0-based rank
		return 1 / math.Pow(float64(rank+1), s)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	var bands []Band
	sum := func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			m += weight(i)
		}
		return m / total
	}
	for i := 0; i < headExact; i++ {
		bands = append(bands, Band{Lo: i, Hi: i + 1, Mass: weight(i) / total})
	}
	width := headExact / 2
	if width < 1 {
		width = 1
	}
	for lo := headExact; lo < n; {
		hi := lo + width
		if hi > n {
			hi = n
		}
		bands = append(bands, Band{Lo: lo, Hi: hi, Mass: sum(lo, hi)})
		lo = hi
		width *= 2
	}
	return bands
}
