package compile

import "math"

// Line is one compiled (resolver, qname) renewal process — or a band of
// Count identical processes, which is how Zipf tails stay bounded.
type Line struct {
	// Lambda is the per-line arrival rate, queries/s.
	Lambda float64
	// TTL is the cache lifetime in seconds after policy capping
	// (resolver.Policy.CacheLifetime).
	TTL float64
	// Bytes is the resident byte charge while cached
	// (cache.EntryCharge arithmetic).
	Bytes float64
	// Count aggregates identical lines; ≤0 means 1.
	Count float64
}

func (l Line) count() float64 {
	if l.Count <= 0 {
		return 1
	}
	return l.Count
}

// CacheSpec configures the shared cache the lines compete in.
type CacheSpec struct {
	// MaxBytes bounds resident bytes; 0 means unbounded.
	MaxBytes float64
	// BaseBytes is the infrastructure-resident overhead (zone cuts, NS and
	// glue records) charged against MaxBytes before workload lines.
	BaseBytes float64
	// Policy is the eviction policy: "", "fifo", "lru", "slru".
	Policy string
	// PrefetchFrac enables refresh-ahead at this fraction of the TTL.
	PrefetchFrac float64
	// MaxEntries is the cache's entry-count capacity (cache.Config
	// Capacity). The transient model sizes the SLRU protected segment
	// from it; 0 leaves the segment bounded by bytes alone.
	MaxEntries float64
	// Exact selects the quadrature-grade composite solver (validation
	// fidelity); false uses closed-form approximations (planet fidelity).
	Exact bool
	// Grid is the Volterra grid for Exact mode; 0 picks a default.
	Grid int
}

// Solution is the solved steady state of a line set in a shared cache.
type Solution struct {
	// PerLine has one entry per input line (representative rates; multiply
	// by Count for totals).
	PerLine []LineRates
	// CharTime is the characteristic time the byte bound induces: the
	// idle-eviction horizon (lru/slru) or residency age bound (fifo).
	// +Inf when the bound does not bind.
	CharTime float64
	// Hit is the aggregate client hit rate, arrival-weighted.
	Hit float64
	// Upstream is the total upstream fetch rate, queries/s.
	Upstream float64
	// PrefetchRate is the total refresh-ahead rate, queries/s.
	PrefetchRate float64
	// EvictRate is the total idle-eviction rate, events/s.
	EvictRate float64
	// OccBytes is the expected resident workload bytes (excluding
	// BaseBytes).
	OccBytes float64
}

// SolveCache finds the steady state of lines sharing one byte-bounded
// cache. Occupancy equals hit rate per line (PASTA), so the Che-style
// fixed point is: find the characteristic time C at which
// Σ count·bytes·hit(C) + BaseBytes = MaxBytes; if even C = max TTL fits,
// the bound does not bind. hit(C) is monotone in C, so bisection
// converges unconditionally.
//
// Policy fidelity:
//   - "fifo": residency ends at age min(TTL, C) regardless of access —
//     exact closed form.
//   - "lru": idle gaps beyond C evict. Exact mode solves the composite
//     Volterra equation per line; fast mode uses the Che product form
//     hit ≈ λT/(1+λT)·(1−e^{−λC}).
//   - "slru" (TinyLFU-admitted segmented LRU): modeled as a perfect-LFU
//     byte knapsack — lines are admitted in popularity order until the
//     budget is spent; rejected lines never cache. The admission filter's
//     imperfection shows up as the boundary band's partial admission.
func SolveCache(lines []Line, spec CacheSpec) Solution {
	budget := spec.MaxBytes - spec.BaseBytes
	unbounded := spec.MaxBytes <= 0

	if spec.Policy == "slru" && !unbounded {
		return solveKnapsack(lines, spec, budget)
	}

	maxTTL := 0.0
	for _, l := range lines {
		if l.TTL > maxTTL {
			maxTTL = l.TTL
		}
	}
	eval := func(c float64, grid int) []LineRates {
		out := make([]LineRates, len(lines))
		for i, l := range lines {
			out[i] = lineRates(l, c, spec, grid)
		}
		return out
	}
	occBytes := func(rates []LineRates) float64 {
		b := 0.0
		for i, l := range lines {
			b += l.count() * l.Bytes * rates[i].Hit
		}
		return b
	}

	full := eval(math.Inf(1), spec.Grid)
	if unbounded || occBytes(full) <= budget {
		return summarize(lines, full, math.Inf(1))
	}
	// Bisect C on the coarse grid, then re-evaluate the root finely.
	coarse := spec.Grid
	if spec.Exact {
		coarse = 64
	}
	lo, hi := 0.0, maxTTL
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if occBytes(eval(mid, coarse)) > budget {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < maxTTL*1e-7 {
			break
		}
	}
	c := (lo + hi) / 2
	return summarize(lines, eval(c, spec.Grid), c)
}

// lineRates evaluates one line at characteristic time c under the spec's
// policy and fidelity.
func lineRates(l Line, c float64, spec CacheSpec, grid int) LineRates {
	switch spec.Policy {
	case "fifo":
		// Residency is an age bound: the line behaves as a pure-TTL line
		// with lifetime min(TTL, C).
		ttl := math.Min(l.TTL, c)
		var r LineRates
		if spec.PrefetchFrac > 0 {
			p := PrefetchSteady(l.Lambda, ttl, spec.PrefetchFrac)
			r = LineRates{Hit: p.Hit, Upstream: p.Upstream, Prefetch: p.Prefetch}
		} else {
			r = LineRates{Hit: SteadyHit(l.Lambda, ttl), Upstream: SteadyUpstream(l.Lambda, ttl)}
		}
		if r.Upstream > 0 {
			r.Cycle = 1 / r.Upstream
			if c < l.TTL {
				// Every cycle ends in an age-out eviction rather than expiry.
				r.Evict = r.Upstream
			}
		}
		return r
	default: // "", "lru"
		if spec.Exact {
			return CompositeLine(l.Lambda, l.TTL, c, spec.PrefetchFrac, grid)
		}
		var r LineRates
		if spec.PrefetchFrac > 0 {
			p := PrefetchSteady(l.Lambda, l.TTL, spec.PrefetchFrac)
			r = LineRates{Hit: p.Hit, Upstream: p.Upstream, Prefetch: p.Prefetch}
		} else {
			r = LineRates{Hit: SteadyHit(l.Lambda, l.TTL), Upstream: SteadyUpstream(l.Lambda, l.TTL)}
		}
		if !math.IsInf(c, 1) {
			// Che product form: survival of the idle bound thins hits.
			survive := 1 - math.Exp(-l.Lambda*c)
			lost := r.Hit * (1 - survive)
			r.Hit *= survive
			// Each lost hit is an extra miss fetch.
			r.Upstream += lost * l.Lambda
			r.Evict = lost * l.Lambda
		}
		if r.Upstream > 0 {
			r.Cycle = 1 / r.Upstream
		}
		return r
	}
}

// solveKnapsack is the SLRU/TinyLFU model: admit whole lines in input
// order (callers supply lines most-popular first, which Zipf banding
// guarantees) until the byte budget is exhausted; the boundary line is
// admitted fractionally, everything after never caches.
func solveKnapsack(lines []Line, spec CacheSpec, budget float64) Solution {
	rates := make([]LineRates, len(lines))
	spent := 0.0
	cut := math.Inf(1)
	for i, l := range lines {
		full := lineRates(l, math.Inf(1), CacheSpec{Policy: "lru", PrefetchFrac: spec.PrefetchFrac, Exact: spec.Exact, Grid: spec.Grid}, spec.Grid)
		need := l.count() * l.Bytes * full.Hit
		switch {
		case spent+need <= budget:
			rates[i] = full
			spent += need
		case spent < budget:
			frac := (budget - spent) / need
			rates[i] = LineRates{
				Hit:      full.Hit * frac,
				Upstream: full.Upstream*frac + l.Lambda*(1-frac),
				Prefetch: full.Prefetch * frac,
				Evict:    l.Lambda * (1 - frac) / 2,
			}
			spent = budget
			cut = float64(i)
		default:
			// Admission-rejected: every arrival misses and refetches.
			rates[i] = LineRates{Upstream: l.Lambda}
		}
	}
	return summarize(lines, rates, cut)
}

// summarize rolls per-line rates into the aggregate solution.
func summarize(lines []Line, rates []LineRates, charTime float64) Solution {
	s := Solution{PerLine: rates, CharTime: charTime}
	totalLambda := 0.0
	for i, l := range lines {
		n := l.count()
		totalLambda += n * l.Lambda
		s.Hit += n * l.Lambda * rates[i].Hit
		s.Upstream += n * rates[i].Upstream
		s.PrefetchRate += n * rates[i].Prefetch
		s.EvictRate += n * rates[i].Evict
		s.OccBytes += n * l.Bytes * rates[i].Hit
	}
	if totalLambda > 0 {
		s.Hit /= totalLambda
	}
	return s
}
