package compile

import (
	"math"
	"math/rand"
	"testing"
)

// monteCarloPrefetchMisses simulates one refresh-ahead line from a cold
// cache: Poisson arrivals, refresh on any hit with remaining ≤ frac·ttl.
func monteCarloPrefetchMisses(lambda, ttl, frac, horizon float64, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	misses := 0.0
	for t := 0; t < trials; t++ {
		var now, expire float64
		for {
			now += rng.ExpFloat64() / lambda
			if now > horizon {
				break
			}
			if now < expire {
				if expire-now <= frac*ttl {
					expire = now + ttl
				}
			} else {
				misses++
				expire = now + ttl
			}
		}
	}
	return misses / float64(trials)
}

func TestPrefetchColdMissesExact(t *testing.T) {
	const ttl, frac, horizon = 60.0, 0.5, 500.0
	for _, lambda := range []float64{0.02, 0.05, 0.2, 1, 3} {
		got := PrefetchColdMisses(lambda, ttl, frac, horizon)
		sim := monteCarloPrefetchMisses(lambda, ttl, frac, horizon, 40000, 11)
		// Monte Carlo SE is at most ~sqrt(misses)/sqrt(trials) ≈ 0.02.
		if math.Abs(got-sim) > 0.06 {
			t.Errorf("λ=%v: PrefetchColdMisses=%.4f, Monte Carlo=%.4f", lambda, got, sim)
		}
	}
}

func TestPrefetchColdMissesReductions(t *testing.T) {
	// frac = 0 reduces to the plain ColdMisses arithmetic.
	if got, want := PrefetchColdMisses(0.5, 60, 0, 400), ColdMisses(0.5, 60, 400); got != want {
		t.Errorf("frac=0: got %v, want ColdMisses %v", got, want)
	}
	// ttl = 0 means every arrival misses.
	if got := PrefetchColdMisses(0.5, 0, 0.5, 400); got != 200 {
		t.Errorf("ttl=0: got %v, want 200", got)
	}
	// A horizon inside the first refresh window can only miss once.
	got := PrefetchColdMisses(2, 100, 0.5, 40)
	want := -math.Expm1(-2 * 40.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("short horizon: got %v, want %v", got, want)
	}
	// Prefetch never increases client misses.
	for _, lambda := range []float64{0.05, 0.5, 2} {
		pf := PrefetchColdMisses(lambda, 60, 0.5, 300)
		plain := ColdMisses(lambda, 60, 300)
		if pf > plain+1e-9 {
			t.Errorf("λ=%v: prefetch misses %v exceed plain %v", lambda, pf, plain)
		}
	}
}

// testLines is a small Zipf-ish band set used by the FiniteHitModel tests.
func testLines(ttl float64) []Line {
	lines := make([]Line, 40)
	for i := range lines {
		lines[i] = Line{Lambda: 2.0 / float64(i+1), TTL: ttl, Bytes: 150}
	}
	return lines
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestFiniteHitModelUnboundedMatchesExact(t *testing.T) {
	lines := testLines(60)
	const horizon = 500.0
	got := FiniteHitModel(lines, CacheSpec{}, horizon, 256)
	for i, l := range lines {
		want := l.Lambda*horizon - ColdMisses(l.Lambda, l.TTL, horizon)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("line %d: unbounded model %v != exact %v", i, got[i], want)
		}
	}
}

func TestFiniteHitModelBoundOnlyLoses(t *testing.T) {
	const horizon = 500.0
	for _, policy := range []string{"fifo", "lru", "slru"} {
		for _, frac := range []float64{0, 0.5} {
			if policy != "lru" && frac > 0 {
				continue
			}
			lines := testLines(60)
			free := FiniteHitModel(lines, CacheSpec{PrefetchFrac: frac}, horizon, 256)
			spec := CacheSpec{MaxBytes: 2000, Policy: policy, PrefetchFrac: frac, MaxEntries: 20}
			bounded := FiniteHitModel(testLines(60), spec, horizon, 256)
			for i := range lines {
				if bounded[i] > free[i]+1e-9 {
					t.Errorf("%s frac=%v line %d: bounded hits %v exceed unbounded %v",
						policy, frac, i, bounded[i], free[i])
				}
				if bounded[i] < 0 {
					t.Errorf("%s line %d: negative hits %v", policy, i, bounded[i])
				}
			}
			if sum(bounded) >= sum(free) {
				t.Errorf("%s frac=%v: bound did not bite (bounded %v, free %v)",
					policy, frac, sum(bounded), sum(free))
			}
		}
	}
}

func TestFiniteHitModelFIFOFlatInTTL(t *testing.T) {
	// Once the queue cycle time L is below every TTL, FIFO hit totals are
	// TTL-independent — the property the simulated pressure grid shows.
	const horizon = 500.0
	spec := CacheSpec{MaxBytes: 2000, Policy: "fifo"}
	h60 := sum(FiniteHitModel(testLines(60), spec, horizon, 256))
	h300 := sum(FiniteHitModel(testLines(300), spec, horizon, 256))
	h3000 := sum(FiniteHitModel(testLines(3000), spec, horizon, 256))
	if math.Abs(h60-h300) > 0.02*h60 || math.Abs(h300-h3000) > 0.02*h300 {
		t.Errorf("FIFO not TTL-flat under pressure: ttl60=%v ttl300=%v ttl3000=%v", h60, h300, h3000)
	}
}

func TestFiniteHitModelPolicyOrderingLongTTL(t *testing.T) {
	// At long TTLs (victims mostly fresh) recency beats queue order:
	// lru ≥ fifo. And the slru churn-freeze sits between its frozen
	// membership and plain lru, so it must stay within the fifo..free
	// bracket too.
	const horizon = 500.0
	mk := func(policy string) float64 {
		return sum(FiniteHitModel(testLines(600), CacheSpec{
			MaxBytes: 2000, Policy: policy, MaxEntries: 20,
		}, horizon, 256))
	}
	fifo, lru := mk("fifo"), mk("lru")
	if lru < fifo {
		t.Errorf("lru (%v) below fifo (%v) at long TTL", lru, fifo)
	}
	free := sum(FiniteHitModel(testLines(600), CacheSpec{}, horizon, 256))
	slru := mk("slru")
	if slru <= 0 || slru > free {
		t.Errorf("slru total %v outside (0, unbounded %v]", slru, free)
	}
}

func TestFiniteHitModelDeterministic(t *testing.T) {
	spec := CacheSpec{MaxBytes: 2000, Policy: "slru", MaxEntries: 20}
	a := FiniteHitModel(testLines(120), spec, 500, 256)
	b := FiniteHitModel(testLines(120), spec, 500, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d: %v != %v across identical runs", i, a[i], b[i])
		}
	}
}

func TestFillTime(t *testing.T) {
	lines := testLines(60)
	// Huge budget: never bites.
	if _, bites := fillTime(lines, 1e9, 500); bites {
		t.Error("fillTime bit on an oversized budget")
	}
	t0, bites := fillTime(lines, 2000, 500)
	if !bites {
		t.Fatal("fillTime did not bite on a tight budget")
	}
	// At t0 the seen-set equals the budget.
	seen := 0.0
	for _, l := range lines {
		seen += l.count() * l.Bytes * -math.Expm1(-l.Lambda*t0)
	}
	if math.Abs(seen-2000) > 1 {
		t.Errorf("seen-set at t0 = %v, want ≈ 2000", seen)
	}
}

func TestCheTime(t *testing.T) {
	lines := testLines(60)
	c := cheTime(lines, 2000)
	if math.IsInf(c, 1) || c <= 0 {
		t.Fatalf("cheTime = %v, want finite positive", c)
	}
	// The Che balance: residency at C fills the budget.
	b := 0.0
	for _, l := range lines {
		b += l.count() * l.Bytes * -math.Expm1(-l.Lambda*c)
	}
	if math.Abs(b-2000) > 1 {
		t.Errorf("resident bytes at C = %v, want ≈ 2000", b)
	}
	if !math.IsInf(cheTime(lines, 1e9), 1) {
		t.Error("cheTime should be +Inf when the budget never fills")
	}
}
