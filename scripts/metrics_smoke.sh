#!/usr/bin/env bash
# Smoke-test the live introspection plane: start an authserver and a
# resolverd with -metrics, resolve one name through the daemon, scrape
# /metrics, and assert the scrape is non-empty JSON that counted the
# resolution. Exits non-zero on any failure.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

cat > "$workdir/root.zone" <<'EOF'
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.test.       172800 IN NS ns1.example.test.
ns1.example.test.   172800 IN A 127.0.0.1
EOF
cat > "$workdir/example.test.zone" <<'EOF'
$ORIGIN example.test.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 60
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A 192.0.2.80
EOF

go build -o "$workdir" ./cmd/authserver ./cmd/resolverd ./cmd/dnsq

"$workdir/authserver" -listen 127.0.0.1:5355 -name a.root-servers.net \
    -zone .="$workdir/root.zone" -zone example.test="$workdir/example.test.zone" &
sleep 0.5
"$workdir/resolverd" -listen 127.0.0.1:5356 -root 127.0.0.1 -rootport 5355 \
    -metrics 127.0.0.1:8053 &
sleep 0.5

# grep without -q: reading to EOF avoids a SIGPIPE race with -o pipefail
# when grep would exit at the first match while dnsq is still writing.
"$workdir/dnsq" -server 127.0.0.1 -port 5356 www.example.test A | grep 192.0.2.80 >/dev/null

scrape=$(curl -sf http://127.0.0.1:8053/metrics)
[ -n "$scrape" ] || { echo "metrics smoke: empty /metrics response" >&2; exit 1; }
echo "$scrape" | grep -q '"resolver.resolutions": 1' ||
    { echo "metrics smoke: resolution not counted:"; echo "$scrape"; exit 1; } >&2
echo "$scrape" | grep -q '"resolver.latency_ms"' ||
    { echo "metrics smoke: latency histogram missing:"; echo "$scrape"; exit 1; } >&2

curl -sf http://127.0.0.1:8053/trace | grep -q 'resolve www.example.test. A' ||
    { echo "metrics smoke: trace not retained" >&2; exit 1; }

"$workdir/dnsq" -trace -server 127.0.0.1 -port 5355 www.example.test A | grep 'cache lookup' >/dev/null ||
    { echo "metrics smoke: dnsq -trace printed no span tree" >&2; exit 1; }

echo "metrics smoke: OK"
