#!/usr/bin/env bash
# Smoke-test the load engine against a live resolver daemon: start an
# authserver and a resolverd (UDP + TCP client listeners), fire a short
# dnsload burst over loopback on each transport, and assert every burst
# reports nonzero QPS and zero protocol errors. Exits non-zero on any
# failure.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

cat > "$workdir/root.zone" <<'EOF'
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.test.       172800 IN NS ns1.example.test.
ns1.example.test.   172800 IN A 127.0.0.1
EOF
cat > "$workdir/example.test.zone" <<'EOF'
$ORIGIN example.test.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 60
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A 192.0.2.80
EOF

go build -o "$workdir" ./cmd/authserver ./cmd/resolverd ./cmd/dnsload

"$workdir/authserver" -listen 127.0.0.1:5365 -name a.root-servers.net \
    -zone .="$workdir/root.zone" -zone example.test="$workdir/example.test.zone" &
sleep 0.5
"$workdir/resolverd" -listen 127.0.0.1:5366 -listen-tcp 127.0.0.1:5366 \
    -root 127.0.0.1 -rootport 5365 &
sleep 0.5

check_burst() {
    local transport=$1
    local out="$workdir/load-$transport.json"
    "$workdir/dnsload" -server 127.0.0.1 -port 5366 -transport "$transport" \
        -workers 8 -count 2000 -workload www.example.test:A \
        -fail-on-error -json "$out"
    grep -q '"errors": 0' "$out" ||
        { echo "loadgen smoke ($transport): protocol errors:"; cat "$out"; exit 1; } >&2
    grep -q '"qps": 0,' "$out" &&
        { echo "loadgen smoke ($transport): zero qps:"; cat "$out"; exit 1; } >&2
    grep -q '"noerror": 2000' "$out" ||
        { echo "loadgen smoke ($transport): not every query answered NOERROR:"; cat "$out"; exit 1; } >&2
    echo "loadgen smoke ($transport): OK"
}

check_burst udp
check_burst tcp

echo "loadgen smoke: OK"
