#!/usr/bin/env bash
# docs_check.sh — keep the docs honest.
#
# Two invariants, checked mechanically so flag or metric additions cannot
# silently outrun the documentation:
#
#  1. Every flag defined in cmd/*/main.go appears (as -flagname) somewhere
#     in docs/.
#  2. Every metric name the code can register — the resolver/authoritative
#     Metric* constants, the cache.Instrument gauge suffixes, and the
#     farm.fe<i>.* counters — appears in docs/.
#  3. Every middleware stage kind registered in internal/middleware (the
#     register("kind", ...) table) has an entry in docs/middleware.md, and
#     every per-stage counter suffix is documented as mw.<stage>.<suffix>.
#
# Exits non-zero listing every undocumented name.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=$(cat docs/*.md)
fail=0

# --- 1. CLI flags ----------------------------------------------------------
# Matches flag.String("name", ...), flag.Bool(...), flag.Int64(...), etc.,
# plus flag.Var(&v, "name", ...).
flags=$(grep -hoE 'flag\.[A-Za-z0-9]+\(&?[A-Za-z0-9_]*,? ?"[a-z][a-z0-9-]*"' cmd/*/main.go |
    grep -oE '"[a-z][a-z0-9-]*"' | tr -d '"' | sort -u)
for f in $flags; do
    if ! grep -qF -- "-$f" <<<"$docs"; then
        echo "docs_check: flag -$f (cmd/*/main.go) is not documented in docs/" >&2
        fail=1
    fi
done

# --- 2. Metric names -------------------------------------------------------
# (a) Named constants: Metric<X> = "some.name" in internal/.
metrics=$(grep -rhoE 'Metric[A-Za-z0-9]+ += +"[a-z_.]+"' internal/ --include='*.go' |
    grep -oE '"[a-z_.]+"' | tr -d '"' | sort -u)
# (b) cache.Instrument gauges: prefix+".suffix" — documented under "cache.".
metrics+=" $(grep -hoE 'prefix\+"\.[a-z_]+"' internal/cache/cache.go |
    sed 's/prefix+"\./cache./; s/"//g' | sort -u)"
# (c) farm per-frontend counters: farm.fe<i>.<name>.
metrics+=" $(grep -hoE 'counter\(i, "[a-z_]+"\)' internal/farm/telemetry.go |
    grep -oE '"[a-z_]+"' | tr -d '"' | sed 's/^/farm.fe<i>./' | sort -u)"

for m in $metrics; do
    if ! grep -qF -- "$m" <<<"$docs"; then
        echo "docs_check: metric $m is not documented in docs/" >&2
        fail=1
    fi
done

# --- 3. Middleware stage kinds --------------------------------------------
# Every kind in the register("kind", ...) table must have a catalog entry in
# docs/middleware.md; every per-stage counter suffix must be documented as
# mw.<stage>.<suffix>.
mwdocs=$(cat docs/middleware.md)
kinds=$(grep -rhoE 'register\("[a-z]+"' internal/middleware/*.go |
    grep -oE '"[a-z]+"' | tr -d '"' | sort -u)
for k in $kinds; do
    if ! grep -qE "^#+ .*\`$k\`|^\| *\`$k\`" <<<"$mwdocs"; then
        echo "docs_check: stage kind $k (internal/middleware) has no entry in docs/middleware.md" >&2
        fail=1
    fi
done
suffixes=$(grep -rhoE 'counter\(sp\.name, "[a-z]+"\)' internal/middleware/*.go |
    grep -oE '"[a-z]+"' | tr -d '"' | sort -u)
for s in $suffixes; do
    if ! grep -qF -- "mw.<stage>.$s" <<<"$docs"; then
        echo "docs_check: middleware counter mw.<stage>.$s is not documented in docs/" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs_check: FAILED — update docs/operations.md / docs/architecture.md / docs/middleware.md" >&2
    exit 1
fi
echo "docs_check: OK ($(wc -w <<<"$flags") flags, $(wc -w <<<"$metrics") metrics, $(wc -w <<<"$kinds") stage kinds all documented)"
