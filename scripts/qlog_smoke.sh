#!/usr/bin/env bash
# Smoke-test the structured query-log plane end to end: start an authserver
# and a resolverd both capturing with -qlog, fire a dnsload burst over
# loopback, lint the live Prometheus exposition with dnstop -promlint, stop
# the daemons so the logs flush, and run dnstop over the captured logs
# asserting nonzero record groups, zero decode errors, and a hit rate that
# agrees with the resolver's own cache counters to within one point.
# Exits non-zero on any failure.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

cat > "$workdir/root.zone" <<'EOF'
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.test.       172800 IN NS ns1.example.test.
ns1.example.test.   172800 IN A 127.0.0.1
EOF
cat > "$workdir/example.test.zone" <<'EOF'
$ORIGIN example.test.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 60
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A 192.0.2.80
EOF

go build -o "$workdir" ./cmd/authserver ./cmd/resolverd ./cmd/dnsload ./cmd/dnstop

"$workdir/authserver" -listen 127.0.0.1:5375 -name a.root-servers.net \
    -zone .="$workdir/root.zone" -zone example.test="$workdir/example.test.zone" \
    -qlog "$workdir/auth.qlog" &
auth_pid=$!
sleep 0.5
"$workdir/resolverd" -listen 127.0.0.1:5376 -root 127.0.0.1 -rootport 5375 \
    -metrics 127.0.0.1:8054 -qlog "$workdir/resolverd.qlog" &
resolver_pid=$!
sleep 0.5

# Burst through the daemon; -out json exercises the machine-readable
# summary CI parses.
"$workdir/dnsload" -server 127.0.0.1 -port 5376 -workers 8 -count 3000 \
    -workload www.example.test:A -fail-on-error -out json > "$workdir/load.json"
grep -q '"errors": 0' "$workdir/load.json" ||
    { echo "qlog smoke: dnsload saw protocol errors:"; cat "$workdir/load.json"; exit 1; } >&2

# Snapshot the live telemetry before stopping the daemon: the Prometheus
# exposition (linted below) and the JSON cache counters (hit-rate oracle).
curl -sf 'http://127.0.0.1:8054/metrics?format=prom' > "$workdir/metrics.prom"
curl -sf http://127.0.0.1:8054/metrics > "$workdir/metrics.json"

"$workdir/dnstop" -promlint "$workdir/metrics.prom" ||
    { echo "qlog smoke: Prometheus exposition failed lint" >&2; exit 1; }
grep -q 'qlog_records' "$workdir/metrics.prom" ||
    { echo "qlog smoke: qlog counters missing from exposition" >&2; exit 1; }

# A windowed-rate query must answer (200 with deltas, or 503 before the
# first baseline snapshot lands — both prove the endpoint is wired).
code=$(curl -s -o /dev/null -w '%{http_code}' 'http://127.0.0.1:8054/metrics?window=1m')
case "$code" in
200|503) ;;
*) echo "qlog smoke: /metrics?window=1m returned $code" >&2; exit 1 ;;
esac

# Stop the daemons cleanly so their query logs flush and close.
kill -TERM "$resolver_pid" && wait "$resolver_pid" 2>/dev/null || true
kill -TERM "$auth_pid" && wait "$auth_pid" 2>/dev/null || true

"$workdir/dnstop" -json "$workdir/resolverd.qlog" > "$workdir/report.json"
cat "$workdir/report.json"

# The burst was 3000 queries; the log must hold client-in, response-out,
# and upstream records, decode cleanly, and group under entrada.
grep -q '"decode_errors": 0' "$workdir/report.json" ||
    { echo "qlog smoke: decode errors in the query log" >&2; exit 1; }
for point in client response upstream; do
    grep -q "\"$point\"" "$workdir/report.json" ||
        { echo "qlog smoke: no $point records captured" >&2; exit 1; }
done
groups=$(sed -n 's/.*"groups": \([0-9]*\).*/\1/p' "$workdir/report.json" | head -1)
[ "${groups:-0}" -ge 1 ] ||
    { echo "qlog smoke: entrada found no (resolver, qname) groups" >&2; exit 1; }

# The authoritative server must have captured its side too.
"$workdir/dnstop" -json "$workdir/auth.qlog" > "$workdir/auth-report.json"
grep -q '"decode_errors": 0' "$workdir/auth-report.json" ||
    { echo "qlog smoke: decode errors in the authoritative log" >&2; exit 1; }

# Closing the loop: the hit rate dnstop derives from the log must agree
# with the resolver's own cache counters (within one point — the counters
# also see infrastructure lookups the client-facing log does not).
awk '
/"hit_rate":/    { gsub(/[",]/, ""); log_rate = $2 }
/"cache.hits":/  { gsub(/[",]/, ""); hits = $2 }
/"cache.misses":/{ gsub(/[",]/, ""); misses = $2 }
END {
    if (hits + misses == 0) { print "qlog smoke: no cache counters scraped" > "/dev/stderr"; exit 1 }
    cache_rate = hits / (hits + misses)
    diff = log_rate - cache_rate; if (diff < 0) diff = -diff
    printf "qlog smoke: hit rate log=%.4f cache=%.4f diff=%.4f\n", log_rate, cache_rate, diff
    if (diff > 0.01) { print "qlog smoke: hit rates disagree by more than one point" > "/dev/stderr"; exit 1 }
}' "$workdir/report.json" "$workdir/metrics.json"

echo "qlog smoke: OK"
