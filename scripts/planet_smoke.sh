#!/usr/bin/env bash
# Smoke-test the workload compiler: run the 1M-user planet-scale cell
# under a wall-clock budget and hold the compiled model to the simulated
# planes (≤ 0.5 hit-points on hitrate, fragmentation, and pressure).
# Exits non-zero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# The 1M-user cell (and the rest of the compiled tier) must clear well
# under the 60 s budget; the test itself asserts the wall clock, and the
# -timeout is the hard backstop.
go test ./internal/experiments/ -run 'TestPlanetScale' -v -timeout 60s

# The compiled model must match the simulated experiments within the
# pinned tolerance (modelTolerance = 0.005 in validate_test.go). These
# sweeps simulate tens of thousands of queries, so they get a wider
# timeout — but each one compares closed-form numbers to a golden-seeded
# simulation and fails on any drift past half a hit-point.
go test ./internal/experiments/ -run 'TestModelValidation' -v -timeout 300s

echo "planet_smoke: OK"
