#!/usr/bin/env bash
# bench.sh — regenerate the repo's performance trajectory file.
#
# Runs the codec / cache / resolver / farm micro-benchmarks, the loopback
# loadgen bursts, and the parallel experiment-sweep timing in-process
# (cmd/benchjson) and writes BENCH_PR6.json at the repo root. Pass --smoke
# for the fast CI variant that skips the multi-second sweep timings.
set -euo pipefail
cd "$(dirname "$0")/.."

args=()
out="BENCH_PR6.json"
for a in "$@"; do
  case "$a" in
    --smoke) args+=("-smoke"); out="BENCH_SMOKE.json" ;;
    *) echo "usage: $0 [--smoke]" >&2; exit 2 ;;
  esac
done

go run ./cmd/benchjson -o "$out" "${args[@]}"
