#!/usr/bin/env bash
# Smoke-test the abuse-protection plane end to end on loopback: a live
# authserver with RRL, a live resolverd running a blocklist + per-client
# rate-limit pipeline, and a dnsload water-torture burst (unique random
# subdomains, the flood no TTL regime can absorb). Asserts:
#
#   1. the blocklist answers locally (NXDOMAIN, nothing reaches upstream),
#   2. the edge rate limiter sheds most of the flood (mw.guard.limited),
#   3. what leaks through still hits RRL at the authoritative
#      (auth.rrl_dropped),
#   4. an honest query still resolves after the flood (collateral check),
#   5. a SIGHUP with a broken spec is rejected and the old graph keeps
#      serving (safe rollback).
#
# Exits non-zero on any failure.
set -euo pipefail

workdir=$(mktemp -d)
# wait after kill: the listeners must actually release their ports before
# another run (or CI job) reuses them.
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$workdir"' EXIT

cat > "$workdir/root.zone" <<'EOF'
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.test.       172800 IN NS ns1.example.test.
ns1.example.test.   172800 IN A 127.0.0.1
EOF
cat > "$workdir/example.test.zone" <<'EOF'
$ORIGIN example.test.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 60
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A 192.0.2.80
EOF

# Blocklist + per-client token bucket in front of the resolver. The
# limiter's qps/burst are sized so the dnsload flood is mostly shed at the
# edge while enough leaks through to exercise RRL upstream.
cat > "$workdir/pipeline.conf" <<'EOF'
entry = "shield"

[stage.shield]
type = "blocklist"
block = "ads.example.test"
action = "nxdomain"
next = "guard"

[stage.guard]
type = "ratelimit"
qps = 20
burst = 10
action = "refuse"
next = "resolve"

[stage.resolve]
type = "resolver"
EOF

go build -o "$workdir" ./cmd/authserver ./cmd/resolverd ./cmd/dnsload ./cmd/dnsq

"$workdir/authserver" -listen 127.0.0.1:5375 -name a.root-servers.net \
    -zone .="$workdir/root.zone" -zone example.test="$workdir/example.test.zone" \
    -rrl "rps=5,burst=10,slip=2" -metrics 127.0.0.1:8061 &
sleep 0.5
"$workdir/resolverd" -listen 127.0.0.1:5376 -root 127.0.0.1 -rootport 5375 \
    -pipeline "$workdir/pipeline.conf" -metrics 127.0.0.1:8062 \
    > "$workdir/resolverd.log" 2>&1 &
resolverd_pid=$!

# Wait for the resolver's UDP listener (bound after the metrics endpoint)
# by polling an actual query; the blocked name answers locally, so this
# needs no upstream and readiness implies the pipeline is live.
ready=0
for i in $(seq 1 40); do
    if "$workdir/dnsq" -server 127.0.0.1 -port 5376 -timeout 500ms ads.example.test A 2>/dev/null |
        grep 'status: NXDOMAIN' >/dev/null; then
        ready=1
        break
    fi
    sleep 0.25
done
# 1. Blocklist: answered locally as NXDOMAIN.
[ "$ready" = 1 ] ||
    { echo "abuse smoke: blocklist did not answer NXDOMAIN" >&2; exit 1; }

# Honest baseline before the flood.
"$workdir/dnsq" -server 127.0.0.1 -port 5376 www.example.test A |
    grep 192.0.2.80 >/dev/null ||
    { echo "abuse smoke: honest query failed before the flood" >&2; exit 1; }

# Water torture: 1200 unique subdomains, paced at 400 q/s so the flood
# lasts ~3 s — long enough for the edge leak (~20 q/s) to exhaust RRL's
# burst upstream. The edge limiter REFUSEs most (an rcode, not a protocol
# error); the leak is an NXDomain flood at the authoritative, where RRL
# drops or slips the responses, which resolverd surfaces as
# SERVFAIL/timeout — so no -fail-on-error, and a short client timeout
# keeps workers from parking behind RRL-starved upstream waits.
"$workdir/dnsload" -server 127.0.0.1 -port 5376 -transport udp \
    -workers 16 -count 1200 -qps 400 -timeout 300ms \
    -workload 'wt{i}.example.test:A*1200' -json "$workdir/flood.json" -quiet

# 2. Edge limiter shed the flood.
curl -sf http://127.0.0.1:8062/metrics | tee "$workdir/rmetrics.json" |
    grep -E '"mw\.guard\.limited": [1-9]' >/dev/null ||
    { echo "abuse smoke: mw.guard.limited never moved:"; cat "$workdir/rmetrics.json"; exit 1; } >&2

# 3. What leaked still tripped RRL at the authoritative.
curl -sf http://127.0.0.1:8061/metrics | tee "$workdir/ametrics.json" |
    grep -E '"auth\.rrl_dropped": [1-9]' >/dev/null ||
    { echo "abuse smoke: auth.rrl_dropped never moved:"; cat "$workdir/ametrics.json"; exit 1; } >&2

# 4. Honest collateral: after the flood drains (and the client's bucket
# refills), the same honest query still answers from cache.
sleep 2
"$workdir/dnsq" -server 127.0.0.1 -port 5376 www.example.test A |
    grep 192.0.2.80 >/dev/null ||
    { echo "abuse smoke: honest query failed after the flood" >&2; exit 1; }

# 5. SIGHUP rollback: a broken spec must be rejected, keeping the old
# graph serving. The daemon must log the rejection (an upstream NXDOMAIN
# would make the blocklist check alone vacuous), and the blocklist must
# still answer locally.
echo 'entry = "nope"' > "$workdir/pipeline.conf"
kill -HUP "$resolverd_pid"
sleep 0.5
grep 'pipeline reload rejected' "$workdir/resolverd.log" >/dev/null ||
    { echo "abuse smoke: broken SIGHUP spec was not rejected:" >&2
      cat "$workdir/resolverd.log" >&2; exit 1; }
"$workdir/dnsq" -server 127.0.0.1 -port 5376 ads.example.test A |
    grep 'status: NXDOMAIN' >/dev/null ||
    { echo "abuse smoke: old pipeline not kept after rejected SIGHUP reload" >&2; exit 1; }

echo "abuse smoke: OK"
