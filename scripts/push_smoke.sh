#!/usr/bin/env bash
# Smoke-test the push-based invalidation plane end to end over real
# processes and sockets: an authserver publishes a zone's change feed
# (-push), a resolverd subscribes (-push zone=host:port), and a zone-file
# edit plus SIGHUP must propagate to the resolver's cache well inside the
# record's 300 s TTL — NOTIFY out, IXFR pull back, targeted purge, fresh
# answer. The push.* metrics and the query log's notify records must both
# witness the exchange. Exits non-zero on any failure.
set -euo pipefail

workdir=$(mktemp -d)
trap 'jobs -p | xargs -r kill 2>/dev/null; rm -rf "$workdir"' EXIT

cat > "$workdir/root.zone" <<'EOF'
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.test.       172800 IN NS ns1.example.test.
ns1.example.test.   172800 IN A 127.0.0.1
EOF
write_example_zone() { # $1 = serial, $2 = www address
    cat > "$workdir/example.test.zone" <<EOF
\$ORIGIN example.test.
@    3600 IN SOA ns1 admin $1 7200 3600 1209600 60
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A $2
EOF
}
write_example_zone 1 192.0.2.80

go build -o "$workdir" ./cmd/authserver ./cmd/resolverd ./cmd/dnsq ./cmd/dnstop

"$workdir/authserver" -listen 127.0.0.1:5385 -name a.root-servers.net \
    -zone .="$workdir/root.zone" -zone example.test="$workdir/example.test.zone" \
    -push &
auth_pid=$!
sleep 0.5
"$workdir/resolverd" -listen 127.0.0.1:5386 -root 127.0.0.1 -rootport 5385 \
    -push example.test=127.0.0.1:5385 -metrics 127.0.0.1:8055 \
    -qlog "$workdir/resolverd.qlog" &
resolver_pid=$!
sleep 0.5

# Warm the cache with the original address.
"$workdir/dnsq" -server 127.0.0.1 -port 5386 www.example.test A > "$workdir/before.txt"
grep -q '192\.0\.2\.80' "$workdir/before.txt" ||
    { echo "push smoke: initial answer missing 192.0.2.80:"; cat "$workdir/before.txt"; exit 1; } >&2

# The update: rewrite the zone file and SIGHUP the authserver. The record
# has ~300 s of TTL left, so only the push plane can move the resolver.
write_example_zone 2 192.0.2.81
kill -HUP "$auth_pid"
sleep 1

"$workdir/dnsq" -server 127.0.0.1 -port 5386 www.example.test A > "$workdir/after.txt"
grep -q '192\.0\.2\.81' "$workdir/after.txt" ||
    { echo "push smoke: post-update answer not repropagated (TTL had ~300s left):"; cat "$workdir/after.txt"; exit 1; } >&2

# The subscriber's counters must show the full chain: notify in, delta
# pulled, entry purged.
curl -sf http://127.0.0.1:8055/metrics > "$workdir/metrics.json"
for counter in push.notifies push.ixfr push.purged push.subscribes; do
    grep -q "\"$counter\": [1-9]" "$workdir/metrics.json" ||
        { echo "push smoke: counter $counter not incremented:"; cat "$workdir/metrics.json"; exit 1; } >&2
done

# Stop the resolver so the query log flushes, then check it captured the
# notify-in record.
kill -TERM "$resolver_pid" && wait "$resolver_pid" 2>/dev/null || true
kill -TERM "$auth_pid" && wait "$auth_pid" 2>/dev/null || true

grep -q '"point": *"notify"' "$workdir/resolverd.qlog" ||
    { echo "push smoke: no notify record in the query log" >&2; exit 1; }
"$workdir/dnstop" -json "$workdir/resolverd.qlog" > "$workdir/report.json"
grep -q '"decode_errors": 0' "$workdir/report.json" ||
    { echo "push smoke: decode errors in the query log" >&2; exit 1; }

echo "push smoke: OK"
