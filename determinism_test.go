package dnsttl

import (
	"reflect"
	"testing"
)

// TestExperimentsDeterministic is the reproducibility contract stated in
// README and DESIGN: the same seed regenerates byte-identical reports, for
// a representative slice of the experiment registry.
func TestExperimentsDeterministic(t *testing.T) {
	sc := QuickScale()
	sc.Probes = 120
	sc.CrawlScale = 0.03
	sc.Resolvers = 80
	for _, id := range []string{"table1", "figure1a", "figures6-8", "table5", "figure10", "outage-sweep"} {
		id := id
		t.Run(id, func(t *testing.T) {
			a, err := RunExperiment(id, sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunExperiment(id, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Metrics, b.Metrics) {
				t.Errorf("metrics differ between identical runs:\n%v\nvs\n%v", a.Metrics, b.Metrics)
			}
			if a.Text != b.Text {
				t.Errorf("rendered text differs between identical runs")
			}
		})
	}
}

// TestParallelSweepDeterministic is the parallel half of the contract: for
// every experiment with a fanned configuration grid, a serial run
// (Workers=1) and a heavily parallel run (Workers=8) must produce
// byte-identical reports. This holds because each sweep cell builds its own
// seeded Network/Clock and simnet randomness is sharded per (src, dst) flow
// with order-independent seeds.
func TestParallelSweepDeterministic(t *testing.T) {
	sc := QuickScale()
	sc.Probes = 90
	for _, id := range []string{"outage-sweep", "propagation", "hitrate", "farm-fragmentation"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, parallel := sc, sc
			serial.Workers = 1
			parallel.Workers = 8
			a, err := RunExperiment(id, serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunExperiment(id, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Metrics, b.Metrics) {
				t.Errorf("metrics differ between serial and parallel runs:\n%v\nvs\n%v", a.Metrics, b.Metrics)
			}
			if a.Text != b.Text {
				t.Errorf("rendered text differs between serial and parallel runs:\n%s\nvs\n%s", a.Text, b.Text)
			}
		})
	}
}

// TestExperimentsSeedSensitive: different seeds actually change the
// stochastic experiments (guarding against accidentally ignored seeds).
func TestExperimentsSeedSensitive(t *testing.T) {
	sc := QuickScale()
	sc.Probes = 120
	a, err := RunExperiment("figure1a", sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 4242
	b, err := RunExperiment("figure1a", sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("different seeds produced identical metrics — seed unused?")
	}
}
