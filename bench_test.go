package dnsttl

// The benchmark harness regenerates every table and figure in the paper's
// evaluation section. Each benchmark runs the corresponding experiment and
// reports the headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` prints rows comparable with the paper (see
// EXPERIMENTS.md for the side-by-side).

import (
	"testing"

	"dnsttl/internal/experiments"
)

// benchScale is sized so the full suite completes in a couple of minutes
// while keeping fleets large enough for stable fractions.
func benchScale() ExperimentScale {
	return ExperimentScale{Probes: 600, CrawlScale: 0.25, Resolvers: 500, Seed: 42}
}

func reportMetrics(b *testing.B, r *Report, names ...string) {
	b.Helper()
	for _, n := range names {
		b.ReportMetric(r.Metric(n), n)
	}
}

// BenchmarkTable1ParentChildTTLs regenerates Table 1: the .cl chain's
// parent/child TTL divergence (172800 at the root, 3600/43200 at the child).
func BenchmarkTable1ParentChildTTLs(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(experiments.NewTestbed(42))
	}
	reportMetrics(b, r, "parent_ns_ttl", "child_ns_ttl", "child_a_ttl")
}

// BenchmarkFigure1UyCentricity regenerates Figure 1 / Table 2 (.uy-NS):
// ~90 % of answers follow the child's 300 s TTL, ~10 % the parent's 2 days.
func BenchmarkFigure1UyCentricity(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Figure1UyNS(sc.Probes, sc.Seed)
	}
	reportMetrics(b, r, "frac_child_centric", "frac_parent_ttl", "frac_full_parent", "vps")
}

// BenchmarkFigure1UyACentricity regenerates the a.nic.uy-A half of Figure 1.
func BenchmarkFigure1UyACentricity(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Figure1UyA(sc.Probes, sc.Seed)
	}
	reportMetrics(b, r, "frac_child_centric", "frac_parent_ttl")
}

// BenchmarkFigure2SLDCentricity regenerates Figure 2 (google.co NS): ~70 %
// of answers above the parent's 900 s, ~15 % capped at 21599 s.
func BenchmarkFigure2SLDCentricity(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2GoogleCo(sc.Probes, sc.Seed)
	}
	reportMetrics(b, r, "frac_over_parent", "frac_capped_21599", "frac_exact_parent")
}

// BenchmarkFigure3NlQueryCounts regenerates Figures 3-4 and the §3.4
// census: ≈52 % of (resolver, qname) groups query more than once in two
// days, and minimum interarrivals bump at one-hour multiples.
func BenchmarkFigure3NlQueryCounts(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.NlPassive(experiments.NlPassiveConfig{Resolvers: sc.Resolvers, Days: 2, Seed: sc.Seed})
	}
	reportMetrics(b, r, "frac_multi_query", "groups", "bump_mass_hour_multiples")
}

// BenchmarkFigure4NlInterarrival is the Figure 4 view of the same passive
// dataset at a smaller population, isolating the interarrival analytics.
func BenchmarkFigure4NlInterarrival(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.NlPassive(experiments.NlPassiveConfig{Resolvers: 250, Days: 2, Seed: 43})
	}
	reportMetrics(b, r, "bump_mass_hour_multiples", "frac_single_but_multi")
}

// BenchmarkFigure6InBailiwick regenerates Figures 6-8 and Tables 3-4: the
// in-bailiwick switch at the NS TTL (60 min) vs out-of-bailiwick at the
// address TTL (120 min), plus the sticky census.
func BenchmarkFigure6InBailiwick(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.BailiwickPair(sc.Probes/2, sc.Seed)
	}
	reportMetrics(b, r,
		"in_frac_new_after_ns_expiry", "out_frac_new_after_ns_expiry",
		"out_frac_new_after_both_expiry", "out_sticky_frac")
}

// BenchmarkFigure7OutOfBailiwick isolates the out-of-bailiwick campaign.
func BenchmarkFigure7OutOfBailiwick(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.BailiwickPair(150, 44)
	}
	reportMetrics(b, r, "out_frac_new_after_ns_expiry", "out_frac_new_after_both_expiry")
}

// BenchmarkFigure8StickyMatchedVPs reports the matched-VP analysis of §4.5.
func BenchmarkFigure8StickyMatchedVPs(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.BailiwickPair(250, 45)
	}
	reportMetrics(b, r, "f8_matched_frac_switchers", "f8_matched_mean_new_ratio", "out_sticky_vps")
}

// BenchmarkTable5Crawl regenerates Table 5's crawl over the five lists.
func BenchmarkTable5Crawl(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		_, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.Table5(results)
	}
	reportMetrics(b, r,
		"responsive_ratio_alexa", "responsive_ratio_umbrella",
		"ns_unique_ratio_alexa", "ns_unique_ratio_nl")
}

// BenchmarkFigure9TTLCDFs regenerates the per-type TTL CDFs.
func BenchmarkFigure9TTLCDFs(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		_, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.Figure9(results)
	}
	reportMetrics(b, r, "root_ns_frac_ge_1day", "umbrella_ns_frac_le_60s", "median_NS_alexa", "median_A_alexa")
}

// BenchmarkTable7ContentTTLs regenerates Tables 6-7: the DMap classes and
// their median TTLs.
func BenchmarkTable7ContentTTLs(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		w, _ := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.Tables6And7(w, sc.Seed)
	}
	reportMetrics(b, r,
		"share_placeholder", "median_h_e-commerce_NS", "median_h_parking_NS", "median_h_placeholder_NS")
}

// BenchmarkTable8ZeroTTL regenerates the zero-TTL census.
func BenchmarkTable8ZeroTTL(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		_, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.Table8(results)
	}
	reportMetrics(b, r, "zero_ttl_alexa", "zero_ttl_nl", "zero_ttl_root")
}

// BenchmarkTable9BailiwickWild regenerates the bailiwick census: >90 %
// out-only for the popular lists, ≈49 % for the root.
func BenchmarkTable9BailiwickWild(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		_, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.Table9(results)
	}
	reportMetrics(b, r, "percent_out_alexa", "percent_out_nl", "percent_out_root")
}

// BenchmarkFigure10UyBeforeAfter regenerates the .uy natural experiment:
// median latency drops several-fold when the child NS TTL goes from 300 s
// to 86400 s, in every region.
func BenchmarkFigure10UyBeforeAfter(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(sc.Probes, sc.Seed)
	}
	reportMetrics(b, r,
		"median_ms_before", "median_ms_after",
		"p75_ms_before", "p75_ms_after",
		"p95_ms_before", "p95_ms_after",
		"regions_improved")
}

// BenchmarkTable10ControlledTTL regenerates Table 10: the ~77 % query-volume
// cut from long TTLs, unique and shared names.
func BenchmarkTable10ControlledTTL(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table10Figure11(sc.Probes/2, sc.Seed)
	}
	reportMetrics(b, r, "load_reduction_unique", "load_reduction_shared",
		"auth_queries_TTL60-u", "auth_queries_TTL86400-u")
}

// BenchmarkFigure11LatencyCDF reports the Figure 11 medians: caching beats
// anycast at the median (paper: 7.38 ms vs 29.95 ms).
func BenchmarkFigure11LatencyCDF(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table10Figure11(sc.Probes/2, sc.Seed+1)
	}
	reportMetrics(b, r,
		"median_ms_TTL60-u", "median_ms_TTL86400-u",
		"median_ms_TTL60-s", "median_ms_TTL86400-s", "median_ms_TTL60-s-anycast")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationGlueCoupling toggles the NS/A lifetime coupling.
func BenchmarkAblationGlueCoupling(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationGlueCoupling(150, 42)
	}
	reportMetrics(b, r, "coupled_frac_new_after_ns_expiry", "decoupled_frac_new_after_ns_expiry")
}

// BenchmarkAblationServeStale toggles RFC 8767 under a full outage.
func BenchmarkAblationServeStale(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationServeStale(150, 42)
	}
	reportMetrics(b, r, "valid_frac_serve_stale", "valid_frac_strict")
}

// BenchmarkAblationPrefetch toggles renew-before-expiry.
func BenchmarkAblationPrefetch(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationPrefetch(100, 42)
	}
	reportMetrics(b, r, "hit_frac_prefetch", "hit_frac_plain",
		"auth_queries_prefetch", "auth_queries_plain")
}

// BenchmarkAblationCapStyle contrasts storage- vs serve-time TTL caps.
func BenchmarkAblationCapStyle(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationCapStyle(42)
	}
	reportMetrics(b, r, "at_cap_frac_serve", "at_cap_frac_store")
}

// BenchmarkDNSSECValidationCentricity quantifies the §6.3 structural
// argument: validation collapses the parent-centric answer share.
func BenchmarkDNSSECValidationCentricity(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.ValidationCentricity(300, 42)
	}
	reportMetrics(b, r, "frac_parent_plain", "frac_parent_validating", "frac_child_validating")
}

// BenchmarkHitRateVsTTL validates the analytical cache model against the
// real cache under a Zipf/Poisson workload (Jung et al., the paper's §7).
func BenchmarkHitRateVsTTL(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.HitRateVsTTL(20000, 1, 42)
	}
	reportMetrics(b, r,
		"hit_rate_ttl_60", "model_ttl_60",
		"hit_rate_ttl_1000", "hit_rate_ttl_86400", "hit_rate_1000_over_86400")
}

// BenchmarkOutageSweep quantifies §6.1's resilience claim: availability
// during a 1-hour outage as a function of the record TTL.
func BenchmarkOutageSweep(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.OutageSweep(120, 1, 42)
	}
	reportMetrics(b, r, "avail_ttl_60", "avail_ttl_3600", "avail_ttl_7200", "avail_stale_ttl_60")
}

// BenchmarkPropagationSweep quantifies §6.1's agility claim: a renumbering
// propagates in roughly the record's TTL.
func BenchmarkPropagationSweep(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.PropagationSweep(120, 1, 42)
	}
	reportMetrics(b, r, "lag_min_ttl_60", "lag_min_ttl_600", "lag_min_ttl_3600")
}

// BenchmarkTable2Campaigns regenerates the Table 2 campaign metadata.
func BenchmarkTable2Campaigns(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(200, 42)
	}
	reportMetrics(b, r, "valid_.uy-NS", "valid_ratio_.uy-NS", "vps_.uy-NS")
}

// BenchmarkParentChildComparison runs the paper's declared future work: the
// full parent-vs-child NS TTL comparison across the five lists.
func BenchmarkParentChildComparison(b *testing.B) {
	sc := benchScale()
	var r *Report
	for i := 0; i < b.N; i++ {
		_, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		r = experiments.ParentChildComparison(results)
	}
	reportMetrics(b, r,
		"frac_child_shorter_nl", "frac_child_shorter_alexa",
		"median_ratio_alexa", "median_ratio_root")
}

// BenchmarkFarmFragmentation regenerates the resolver-farm sweep (§4.4's
// operational finding): private frontend caches multiply authoritative
// query volume ~linearly with farm size at short TTLs, shared and sharded
// fleet caches keep it flat.
func BenchmarkFarmFragmentation(b *testing.B) {
	var r *Report
	for i := 0; i < b.N; i++ {
		r = experiments.FarmFragmentation(4000, 1, 42)
	}
	reportMetrics(b, r,
		"growth_private_ttl60", "hot_growth_private_ttl60",
		"growth_shared_ttl60", "growth_sharded_ttl60",
		"hit_private_f16_ttl60", "hit_shared_f16_ttl60")
}
