module dnsttl

go 1.22
