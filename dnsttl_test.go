package dnsttl

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

const rootZoneText = `
$ORIGIN .
@                  86400 IN SOA a.root-servers.net. nstld.example. 1 1800 900 604800 86400
@                  518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.org.       172800 IN NS ns1.example.org.
ns1.example.org.   172800 IN A 127.0.0.1
`

const orgZoneText = `
$ORIGIN example.org.
@     3600 IN SOA ns1 admin 1 7200 3600 1209600 300
@     3600 IN NS ns1
ns1   3600 IN A 127.0.0.1
www   300  IN A 192.0.2.80
`

// TestEndToEndUDP runs a real authoritative server on loopback UDP and
// resolves through the public Client API — the full stack over the OS
// network path.
func TestEndToEndUDP(t *testing.T) {
	rootZone, err := ParseZone(rootZoneText, NewName("."))
	if err != nil {
		t.Fatal(err)
	}
	orgZone, err := ParseZone(orgZoneText, NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewName("a.root-servers.net"), nil)
	srv.AddZone(rootZone)
	srv.AddZone(orgZone)
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{addr.Addr()},
		Net:   UDPNet{Port: addr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Lookup(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != RCodeNoError || len(res.Msg.Answer) != 1 {
		t.Fatalf("lookup failed: %s", res.Msg)
	}
	if res.AnswerTTL != 300 {
		t.Errorf("TTL = %d, want 300", res.AnswerTTL)
	}
	if res.Latency <= 0 || res.Queries == 0 {
		t.Errorf("trace: %+v", res.Trace)
	}

	// Second lookup hits the cache.
	res, err = client.Lookup(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Errorf("second lookup should hit cache")
	}
	if st := client.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("cache stats: %+v", st)
	}
	if srv.QueryCount() == 0 {
		t.Errorf("server saw no queries")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Errorf("NewClient without roots must fail")
	}
}

func TestAdviseFacade(t *testing.T) {
	cfg := ZoneConfig{
		Domain:      NewName("example.org"),
		ParentNSTTL: 172800, ChildNSTTL: 300,
		ChildAddrTTL: 120, Bailiwick: BailiwickMixed, ServiceTTL: 300,
	}
	recs := Advise(cfg, Scenario{})
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	d := EffectiveNSTTL(cfg, MeasuredPopulation())
	if len(d) < 2 {
		t.Errorf("effective NS TTL distribution = %v", d)
	}
	if EffectiveAddrTTL(cfg, MeasuredPopulation()).Min() == 0 {
		t.Errorf("addr distribution empty")
	}
	if EffectiveServiceTTL(cfg, MeasuredPopulation()).Mean() == 0 {
		t.Errorf("service distribution empty")
	}
	e := Estimate(d, DefaultWorkload())
	if e.HitRate <= 0 || e.MeanLatency <= 0 {
		t.Errorf("estimate = %+v", e)
	}
	if HitRate(3600, 0.01) <= HitRate(60, 0.01) {
		t.Errorf("hit-rate model broken")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", QuickScale()); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	r, err := RunExperiment("table1", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "Table 1" || !strings.Contains(r.Text, "a.nic.cl") {
		t.Errorf("report = %s", r.ID)
	}
}

func TestCrawlListsAndIDs(t *testing.T) {
	lists := CrawlLists()
	if len(lists) != 5 {
		t.Errorf("lists = %v", lists)
	}
	if len(ExperimentIDs) < 10 {
		t.Errorf("experiment IDs = %v", ExperimentIDs)
	}
	for _, id := range ExperimentIDs {
		found := false
		for _, known := range ExperimentIDs {
			if id == known {
				found = true
			}
		}
		if !found {
			t.Errorf("id %q not self-consistent", id)
		}
	}
}

func TestMessageFacade(t *testing.T) {
	m := &Message{
		Header:   Header{ID: 7, RD: true},
		Question: []Question{{Name: NewName("x.org"), Type: TypeA, Class: 1}},
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q().Name != NewName("x.org") || got.Header.ID != 7 {
		t.Errorf("round trip: %v", got)
	}
}

func TestVirtualClockFacade(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(time.Minute)
	if c.Elapsed() != time.Minute {
		t.Errorf("elapsed = %v", c.Elapsed())
	}
	var _ Clock = c
	var _ Clock = simnet.WallClock{}
}
