// The bailiwick example demonstrates §4's finding: where your nameserver's
// name lives decides how long its address is cached. It compares effective
// address lifetimes for in- and out-of-bailiwick configurations and then
// runs the renumbering experiment to show the switch happening at 60 vs
// 120 minutes.
package main

import (
	"fmt"
	"log"

	"dnsttl"
)

func main() {
	base := dnsttl.ZoneConfig{
		Domain:       dnsttl.NewName("sub.cachetest.net"),
		ParentNSTTL:  3600,
		ChildNSTTL:   3600,
		ChildAddrTTL: 7200,
		ServiceTTL:   60,
	}
	pop := dnsttl.MeasuredPopulation()

	for _, bw := range []dnsttl.BailiwickClass{dnsttl.BailiwickInOnly, dnsttl.BailiwickOutOnly} {
		cfg := base
		cfg.Bailiwick = bw
		fmt.Printf("%s nameservers — effective server-address lifetime:\n", bw)
		fmt.Print(dnsttl.EffectiveAddrTTL(cfg, pop))
		for _, rec := range dnsttl.Advise(cfg, dnsttl.Scenario{}) {
			fmt.Println("  ", rec)
		}
		fmt.Println()
	}

	fmt.Println("Renumbering campaign (Figures 6/7, scaled down):")
	sc := dnsttl.QuickScale()
	sc.Probes = 120
	report, err := dnsttl.RunExperiment("figures6-8", sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  in-bailiwick switched in the 60-120 min window:  %.0f%%\n",
		100*report.Metric("in_frac_new_after_ns_expiry"))
	fmt.Printf("  out-of-bailiwick switched in the same window:    %.0f%%\n",
		100*report.Metric("out_frac_new_after_ns_expiry"))
	fmt.Printf("  out-of-bailiwick switched after 120 min:         %.0f%%\n",
		100*report.Metric("out_frac_new_after_both_expiry"))
}
