// The quickstart example runs an authoritative server on loopback UDP,
// resolves a name through the library's caching resolver twice, and shows
// the cache cutting the second lookup's latency — the paper's core
// observation in twenty lines.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsttl"
)

const rootZone = `
$ORIGIN .
@                   86400 IN SOA a.root-servers.net. ops.example. 1 1800 900 604800 86400
@                   518400 IN NS a.root-servers.net.
a.root-servers.net. 518400 IN A 127.0.0.1
example.org.        172800 IN NS ns1.example.org.
ns1.example.org.    172800 IN A 127.0.0.1
`

const orgZone = `
$ORIGIN example.org.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 300
@    3600 IN NS ns1
ns1  3600 IN A 127.0.0.1
www  300  IN A 192.0.2.80
`

func main() {
	// One process plays the whole hierarchy: root and example.org.
	srv := dnsttl.NewServer(dnsttl.NewName("a.root-servers.net"), nil)
	for origin, text := range map[string]string{".": rootZone, "example.org": orgZone} {
		z, err := dnsttl.ParseZone(text, dnsttl.NewName(origin))
		if err != nil {
			log.Fatal(err)
		}
		srv.AddZone(z)
	}
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("authoritative server on %s\n\n", addr)

	client, err := dnsttl.NewClient(dnsttl.ClientConfig{
		Roots: []netip.Addr{addr.Addr()},
		Net:   dnsttl.UDPNet{Port: addr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= 2; i++ {
		res, err := client.Lookup(dnsttl.NewName("www.example.org"), dnsttl.TypeA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lookup %d: ttl=%ds cacheHit=%v upstreamQueries=%d latency=%v\n",
			i, res.AnswerTTL, res.CacheHit, res.Queries, res.Latency.Round(time.Microsecond))
		for _, rr := range res.Msg.Answer {
			fmt.Println("  ", rr)
		}
	}
	st := client.CacheStats()
	fmt.Printf("\ncache: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
}
