// The ttlplanner example is the operator-facing payoff of the paper: sweep
// candidate TTLs for a zone, estimate cache hit rate, client latency and
// authoritative load for each (using the Jung et al. cache model the paper
// builds on), and print the §6.3 recommendations for the chosen scenario.
//
// Flags model the §6.1 trade-offs:
//
//	ttlplanner -loadbalancing        # CDN-style steering
//	ttlplanner -scrubbing -metered   # DDoS redirection on a metered service
package main

import (
	"flag"
	"fmt"
	"time"

	"dnsttl"
)

func main() {
	var (
		lb       = flag.Bool("loadbalancing", false, "zone steers traffic via DNS")
		scrub    = flag.Bool("scrubbing", false, "zone must redirect through a DDoS scrubber on demand")
		metered  = flag.Bool("metered", false, "DNS service bills per query")
		registry = flag.Bool("registry", false, "zone hosts public delegations")
		qps      = flag.Float64("qps", 0.02, "client demand per resolver (queries/second)")
	)
	flag.Parse()

	w := dnsttl.DefaultWorkload()
	w.QueriesPerSecond = *qps
	pop := dnsttl.MeasuredPopulation()

	fmt.Printf("%-10s %-10s %-12s %-14s\n", "TTL", "hit rate", "mean latency", "auth q/hour")
	for _, ttl := range []uint32{0, 60, 300, 900, 3600, 14400, 86400} {
		cfg := dnsttl.ZoneConfig{ServiceTTL: ttl, ChildNSTTL: 86400, ParentNSTTL: 86400,
			ChildAddrTTL: 86400, Bailiwick: dnsttl.BailiwickOutOnly}
		est := dnsttl.Estimate(dnsttl.EffectiveServiceTTL(cfg, pop), w)
		fmt.Printf("%-10d %-10.1f%% %-12v %-14.1f\n",
			ttl, est.HitRate*100, est.MeanLatency.Round(100*time.Microsecond), est.AuthQueriesPerHour)
	}

	scenario := dnsttl.Scenario{
		DNSLoadBalancing: *lb,
		DDoSScrubbing:    *scrub,
		MeteredDNS:       *metered,
		RegistryOperator: *registry,
	}
	cfg := dnsttl.ZoneConfig{
		Domain:      dnsttl.NewName("example.org"),
		ParentNSTTL: 172800, ChildNSTTL: 3600,
		ChildAddrTTL: 3600, Bailiwick: dnsttl.BailiwickOutOnly,
		ServiceTTL: 300,
	}
	fmt.Printf("\nRecommendations for %s under this scenario:\n", cfg.Domain)
	for _, rec := range dnsttl.Advise(cfg, scenario) {
		fmt.Println(" ", rec)
	}
}
