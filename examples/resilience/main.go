// The resilience example quantifies §6.1's DDoS argument: how long a zone
// survives an authoritative outage is exactly its TTL — unless resolvers
// serve stale. It runs the outage sweep and then asks the advisor what a
// DDoS-conscious operator should configure.
package main

import (
	"fmt"
	"log"

	"dnsttl"
)

func main() {
	sc := dnsttl.QuickScale()
	sc.Probes = 120
	report, err := dnsttl.RunExperiment("outage-sweep", sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Text)

	fmt.Println("Advisor view for a DDoS-scrubbing user with a 1-hour-TTL zone:")
	cfg := dnsttl.ZoneConfig{
		Domain:      dnsttl.NewName("shop.example"),
		ParentNSTTL: 172800, ChildNSTTL: 172800,
		ChildAddrTTL: 3600, Bailiwick: dnsttl.BailiwickOutOnly,
		ServiceTTL: 3600,
	}
	for _, rec := range dnsttl.Advise(cfg, dnsttl.Scenario{DDoSScrubbing: true}) {
		fmt.Println(" ", rec)
	}
}
