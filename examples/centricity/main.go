// The centricity example reproduces §3 in miniature: it asks which TTL —
// the parent's two days or the child's five minutes — resolvers actually
// honor for a .uy-style zone, first analytically with the effective-TTL
// model, then empirically by running the Figure 1 campaign.
package main

import (
	"fmt"
	"log"

	"dnsttl"
)

func main() {
	cfg := dnsttl.ZoneConfig{
		Domain:        dnsttl.NewName("uy"),
		ParentNSTTL:   172800, // the root's delegation
		ChildNSTTL:    300,    // .uy's own NS TTL in early 2019
		ParentGlueTTL: 172800,
		ChildAddrTTL:  120,
		Bailiwick:     dnsttl.BailiwickMixed,
		ServiceTTL:    300,
	}

	fmt.Println("Effective NS TTLs across the measured resolver population:")
	fmt.Print(dnsttl.EffectiveNSTTL(cfg, dnsttl.MeasuredPopulation()))

	fmt.Println("\nWhat the operator should hear about it:")
	for _, rec := range dnsttl.Advise(cfg, dnsttl.Scenario{}) {
		fmt.Println(" ", rec)
	}

	fmt.Println("\nAnd the measured campaign (Figure 1a, scaled down):")
	sc := dnsttl.QuickScale()
	sc.Probes = 150
	report, err := dnsttl.RunExperiment("figure1a", sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  child-centric answers: %.1f%%\n", 100*report.Metric("frac_child_centric"))
	fmt.Printf("  parent-side answers:   %.1f%%\n", 100*report.Metric("frac_parent_ttl"))
	fmt.Printf("  full 172800 s answers: %.1f%%\n", 100*report.Metric("frac_full_parent"))
}
