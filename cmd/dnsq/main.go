// Command dnsq is a dig-like query tool over the library's wire codec and
// UDP exchanger.
//
// Usage:
//
//	dnsq -server 127.0.0.1 -port 5353 www.example.org A
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsttl"
	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1", "server address")
		port    = flag.Uint("port", 53, "server port")
		timeout = flag.Duration("timeout", 3*time.Second, "query timeout")
		rd      = flag.Bool("rd", true, "set the recursion-desired flag")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dnsq [flags] name [type]")
		os.Exit(2)
	}
	name := dnsttl.NewName(flag.Arg(0))
	qtype := dnsttl.TypeA
	if flag.NArg() > 1 {
		t, err := dnswire.ParseType(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsq:", err)
			os.Exit(2)
		}
		qtype = t
	}

	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, qtype)
	q.Header.RD = *rd
	wire, err := dnsttl.Encode(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	addr, err := netip.ParseAddr(*server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(2)
	}
	respWire, rtt, err := authoritative.UDPExchange(netip.AddrPortFrom(addr, uint16(*port)), wire, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	resp, err := dnsttl.Decode(respWire)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq: bad response:", err)
		os.Exit(1)
	}
	fmt.Print(resp)
	fmt.Printf(";; Query time: %v\n;; SERVER: %s#%d\n", rtt.Round(time.Microsecond), *server, *port)
}
