// Command dnsq is a dig-like query tool over the library's wire codec and
// real-socket transports (UDP, TCP, DoT, DoH).
//
// Usage:
//
//	dnsq -server 127.0.0.1 -port 5353 www.example.org A
//	dnsq -transport dot -insecure -server 127.0.0.1 -port 8853 www.example.org A
//	dnsq -trace -server 127.0.0.1 -port 5353 www.example.org A
//
// With -trace, dnsq iterates from the server itself (dig +trace style,
// treating -server as the sole root hint) and prints the resolution's full
// lifecycle as a span tree: cache lookup, per-zone iteration steps, and
// each upstream exchange with its RTT and TTL decisions.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsttl"
	"dnsttl/internal/dnswire"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1", "server address")
		port     = flag.Uint("port", 0, "server port (0 = transport default: 53/53/853/443)")
		timeout  = flag.Duration("timeout", 3*time.Second, "query timeout")
		rd       = flag.Bool("rd", true, "set the recursion-desired flag")
		trans    = flag.String("transport", "udp", "transport: udp, tcp, dot, or doh")
		insecure = flag.Bool("insecure", false, "skip TLS verification for dot/doh (self-signed test certs)")
		trace    = flag.Bool("trace", false, "iterate from -server like dig +trace and print the span tree")
		retries  = flag.Int("retries", 0, "with -trace: upstream attempts per step (0 = single-shot)")
		hedge    = flag.Duration("hedge", 0, "with -trace: hedge delay for a second query to the next-best server (0 = off)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dnsq [flags] name [type]")
		os.Exit(2)
	}
	name := dnsttl.NewName(flag.Arg(0))
	qtype := dnsttl.TypeA
	if flag.NArg() > 1 {
		t, err := dnswire.ParseType(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsq:", err)
			os.Exit(2)
		}
		qtype = t
	}

	addr, err := netip.ParseAddr(*server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(2)
	}
	kind, err := dnsttl.ParseTransportKind(*trans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(2)
	}
	dstPort := uint16(*port)
	if dstPort == 0 {
		dstPort = kind.DefaultPort()
	}
	if *trace {
		rp := dnsttl.RetryPolicy{Attempts: *retries, Hedge: *hedge}
		if *retries > 0 {
			rp.Backoff = 250 * time.Millisecond
			rp.Jitter = 0.5
		}
		runTrace(addr, dstPort, kind, *insecure, *timeout, name, qtype, rp)
		return
	}

	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, qtype)
	q.Header.RD = *rd
	wire, err := dnsttl.Encode(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	tnet, err := dnsttl.NewTransportNet(kind, dnsttl.TransportOptions{
		Port: dstPort, Timeout: *timeout, Insecure: *insecure,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	defer tnet.Close()
	respWire, rtt, err := tnet.Exchange(netip.Addr{}, addr, wire)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	resp, err := dnsttl.Decode(respWire)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq: bad response:", err)
		os.Exit(1)
	}
	fmt.Print(resp)
	fmt.Printf(";; Query time: %v\n;; SERVER: %s#%d (%s)\n", rtt.Round(time.Microsecond), *server, dstPort, kind)
}

// runTrace resolves the name iteratively on the client side, dig +trace
// style: the given server is the only root hint, and every lifecycle step
// the library records — cache lookup, zone-by-zone iteration, individual
// upstream exchanges with RTTs and TTL decisions — is printed as a span
// tree.
func runTrace(root netip.Addr, port uint16, kind dnsttl.TransportKind, insecure bool, timeout time.Duration, name dnsttl.Name, qtype dnsttl.Type, rp dnsttl.RetryPolicy) {
	tnet, err := dnsttl.NewTransportNet(kind, dnsttl.TransportOptions{
		Port: port, Timeout: timeout, Insecure: insecure,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	defer tnet.Close()
	pol := dnsttl.DefaultPolicy()
	pol.Retry = rp
	client, err := dnsttl.NewClient(dnsttl.ClientConfig{
		Policy: pol,
		Roots:  []netip.Addr{root},
		Net:    tnet,
		Tracer: dnsttl.NewTracer(nil),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	res, err := client.Lookup(name, qtype)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsq:", err)
		os.Exit(1)
	}
	if res.Span != nil {
		fmt.Print(res.Span.String())
	}
	fmt.Println()
	fmt.Print(res.Msg)
	fmt.Printf(";; Query time: %v\n;; ROOT HINT: %s#%d\n", res.Latency.Round(time.Microsecond), root, port)
}
