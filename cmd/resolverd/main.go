// Command resolverd runs the library's recursive resolver as a daemon: it
// answers client queries over UDP, iterating from the configured roots and
// caching under the selected policy.
//
// Usage:
//
//	resolverd -listen 127.0.0.1:5300 -root 127.0.0.1 -rootport 5353
//	resolverd -listen 127.0.0.1:5300 -root 198.41.0.4 -parentcentric
//
// A local root mirror (RFC 7706) can be loaded with -localroot via AXFR
// from the first root server.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnsttl"
	"dnsttl/internal/authoritative"
)

// pushFlags accumulates repeatable -push zone=host:port subscriptions.
type pushFlags []string

func (p *pushFlags) String() string { return strings.Join(*p, ",") }
func (p *pushFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

// pushNet routes the push subscriber's subscribe/poll/IXFR exchanges over
// real UDP to each authority's own port.
type pushNet struct {
	ports map[netip.Addr]uint16
}

func (p pushNet) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	return dnsttl.UDPNet{Port: p.ports[dst], Timeout: 2 * time.Second}.Exchange(src, dst, query)
}

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:5300", "UDP listen address for clients")
		roots         = flag.String("root", "", "comma-separated root server addresses")
		rootPort      = flag.Uint("rootport", 53, "port for upstream servers")
		parentCentric = flag.Bool("parentcentric", false, "prefer parent-side TTLs")
		cap           = flag.Uint("ttlcap", 604800, "TTL cap in seconds (0 = none)")
		stale         = flag.Bool("servestale", false, "serve stale answers when authoritatives fail")
		validate      = flag.Bool("validate", false, "enable DNSSEC validation")
		localRoot     = flag.Bool("localroot", false, "mirror the root zone locally via AXFR (RFC 7706)")
		frontends     = flag.Int("frontends", 1, "run a resolver farm of this many recursive frontends")
		topology      = flag.String("cache-topology", "shared", "farm cache topology: private, shared, or sharded")
		placement     = flag.String("placement", "random", "farm query placement: random, roundrobin, or hash")
		coalesce      = flag.Bool("coalesce", true, "coalesce identical in-flight queries across the farm")
		metrics       = flag.String("metrics", "", "HTTP address for /metrics and /trace introspection (empty = off)")
		retries       = flag.Int("retries", 0, "upstream attempts per iteration step (0 = legacy single-shot semantics)")
		backoff       = flag.Duration("backoff", 0, "delay before the first retry, doubling per retry (0 = none)")
		hedge         = flag.Duration("hedge", 0, "launch a hedged query to the next-best server after this delay (0 = off)")
		srtt          = flag.Bool("srtt", false, "order candidate servers by smoothed RTT instead of shuffling")
		cacheBytes    = flag.Int64("cache-bytes", 0, "cache memory bound in bytes, wire-format accounted (0 = unbounded)")
		cacheEntries  = flag.Int("cache-entries", 0, "cache entry-count bound (0 = unbounded)")
		eviction      = flag.String("eviction", "fifo", "cache eviction policy: fifo, lru, or slru (TinyLFU admission)")
		prefetch      = flag.Float64("prefetch", 0, "refresh-ahead: re-resolve popular entries in the last FRACTION of their TTL (0 = off)")
		prefetchBudg  = flag.Int("prefetch-budget", 0, "max refresh-ahead resolutions per minute (0 = unlimited)")
		trans         = flag.String("transport", "udp", "upstream transport: udp, tcp, dot, or doh")
		poolSize      = flag.Int("pool-size", 0, "pooled upstream connections per server (0 = default)")
		insecure      = flag.Bool("insecure", false, "skip TLS verification for dot/doh upstreams (self-signed certs)")
		listenTCP     = flag.String("listen-tcp", "", "TCP listen address for clients (empty = off)")
		listenDoT     = flag.String("listen-dot", "", "DNS-over-TLS listen address for clients (empty = off)")
		listenDoH     = flag.String("listen-doh", "", "DNS-over-HTTPS listen address for clients (empty = off)")
		tlsCert       = flag.String("tls-cert", "", "TLS certificate file for -listen-dot/-listen-doh (empty = ephemeral self-signed)")
		tlsKey        = flag.String("tls-key", "", "TLS key file for -listen-dot/-listen-doh")
		qlogPath      = flag.String("qlog", "", "structured query-log file; rotations shift to FILE.1.. (empty = off)")
		qlogFormat    = flag.String("qlog-format", "jsonl", "query-log encoding: jsonl or binary")
		qlogMaxBytes  = flag.Int64("qlog-max-bytes", 0, "rotate the query log past this size (0 = 64 MiB)")
		qlogFiles     = flag.Int("qlog-files", 0, "rotated query-log files kept, active included (0 = 4)")
		qlogSample    = flag.Int("qlog-sample", 0, "keep 1 query-log record in N (0 or 1 = all)")
		qlogClientMod = flag.Int("qlog-client-mod", 0, "keep only clients hashing to 0 mod M, complete per-client streams (0 or 1 = all)")
		qlogPoints    = flag.String("qlog-points", "all", "capture points to log: comma list of client,response,upstream,notify, or all")
		metricsEvery  = flag.Duration("metrics-window-every", 10*time.Second, "snapshot period backing /metrics?window= rate queries")
		pushPoll      = flag.Duration("push-poll", 0, "SOA polling fallback period for push subscriptions (0 = 5m)")
		pushPrefetch  = flag.Bool("push-prefetch", false, "re-resolve names purged by push notifies immediately (purge+prefetch)")
		pipeline      = flag.String("pipeline", "", "middleware graph spec file (see docs/middleware.md); SIGHUP re-reads and swaps it, keeping the old graph on error (empty = default pass-through pipeline)")
		pushSubs      pushFlags
	)
	flag.Var(&pushSubs, "push", "zone=host:port push subscription (repeatable): subscribe to the zone's NOTIFY/IXFR change feed and purge on notify")
	flag.Parse()
	if *roots == "" {
		fmt.Fprintln(os.Stderr, "resolverd: -root is required")
		os.Exit(2)
	}
	var rootAddrs []netip.Addr
	for _, s := range strings.Split(*roots, ",") {
		a, err := netip.ParseAddr(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		rootAddrs = append(rootAddrs, a)
	}

	pol := dnsttl.DefaultPolicy()
	pol.TTLCap = uint32(*cap)
	pol.ServeStale = *stale
	pol.Validate = *validate
	if *parentCentric {
		pol.Centricity = dnsttl.ParentCentric
	}
	pol.LocalRoot = *localRoot
	pol.Retry = dnsttl.RetryPolicy{
		Attempts:    *retries,
		Backoff:     *backoff,
		Jitter:      0.5,
		Hedge:       *hedge,
		OrderBySRTT: *srtt,
	}
	if *prefetch > 0 {
		if *prefetch > 1 {
			fmt.Fprintln(os.Stderr, "resolverd: -prefetch must be a fraction in (0,1]")
			os.Exit(2)
		}
		pol.Prefetch = true
		pol.PrefetchFraction = *prefetch
		pol.PrefetchBudget = *prefetchBudg
	}
	evict, err := dnsttl.ParseEvictionPolicy(*eviction)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolverd:", err)
		os.Exit(2)
	}

	cfg := dnsttl.ClientConfig{
		Policy:        pol,
		Roots:         rootAddrs,
		Frontends:     *frontends,
		Coalesce:      *coalesce,
		CacheCapacity: *cacheEntries,
		CacheBytes:    *cacheBytes,
		Eviction:      evict,
	}
	if *metrics != "" {
		cfg.Registry = dnsttl.NewRegistry(nil)
		cfg.Tracer = dnsttl.NewTracer(nil)
	}
	var qlogger *dnsttl.QueryLog
	if *qlogPath != "" {
		format, err := dnsttl.ParseQueryLogFormat(*qlogFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		points, err := dnsttl.ParseQueryLogPoints(*qlogPoints)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		qlogger, err = dnsttl.NewQueryLog(dnsttl.QueryLogConfig{
			Path:         *qlogPath,
			Format:       format,
			MaxBytes:     *qlogMaxBytes,
			MaxFiles:     *qlogFiles,
			SampleN:      *qlogSample,
			PerClientMod: *qlogClientMod,
			Points:       points,
			Registry:     cfg.Registry,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd: qlog:", err)
			os.Exit(1)
		}
		defer qlogger.Close()
		fmt.Printf("query log: %s (%s)\n", *qlogPath, format)
	}
	kind, err := dnsttl.ParseTransportKind(*trans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolverd:", err)
		os.Exit(2)
	}
	upstreamNet, err := dnsttl.NewTransportNet(kind, dnsttl.TransportOptions{
		Port:     uint16(*rootPort),
		PoolSize: *poolSize,
		Insecure: *insecure,
		Registry: cfg.Registry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolverd:", err)
		os.Exit(2)
	}
	defer upstreamNet.Close()
	cfg.Net = upstreamNet
	if *frontends > 1 {
		topo, err := dnsttl.ParseFarmTopology(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		place, err := dnsttl.ParseFarmPlacement(*placement)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		cfg.Topology = topo
		cfg.Placement = place
	}
	if *localRoot {
		z, err := authoritative.FetchZone(netip.AddrPortFrom(rootAddrs[0], uint16(*rootPort)),
			dnsttl.NewName("."), 5*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd: local root AXFR:", err)
			os.Exit(1)
		}
		cfg.LocalRoot = z
		fmt.Printf("mirrored root zone: %d records\n", z.RecordCount())
	}
	if *pipeline != "" {
		spec, err := os.ReadFile(*pipeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		if err := dnsttl.CheckPipeline(string(spec)); err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(2)
		}
		cfg.Pipeline = string(spec)
	}
	// The upstream tap is labeled with the upstream transport; the
	// client-facing taps are created per listener by RecursiveServer.
	cfg.QueryLog = qlogger.Tap(kind.String())
	client, err := dnsttl.NewClient(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolverd:", err)
		os.Exit(1)
	}
	if *pipeline != "" {
		fmt.Printf("pipeline: %s [%s]\n", *pipeline, strings.Join(client.PipelineStages(), " -> "))
	}
	// SIGHUP re-reads the -pipeline spec and swaps the graph atomically;
	// a spec that fails to parse or build leaves the running graph
	// untouched, so a bad rollout never takes the datapath down.
	if *pipeline != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				spec, err := os.ReadFile(*pipeline)
				if err != nil {
					fmt.Fprintln(os.Stderr, "resolverd: pipeline reload:", err)
					continue
				}
				if err := client.SetPipeline(string(spec)); err != nil {
					fmt.Fprintln(os.Stderr, "resolverd: pipeline reload rejected (keeping old graph):", err)
					continue
				}
				fmt.Printf("pipeline reloaded: %s [%s]\n", *pipeline, strings.Join(client.PipelineStages(), " -> "))
			}
		}()
	}
	rs := &dnsttl.RecursiveServer{Client: client, QueryLog: qlogger}
	addr, err := rs.ListenUDP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolverd:", err)
		os.Exit(1)
	}
	if *listenTCP != "" {
		tcpAddr, err := rs.ListenTCP(*listenTCP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd:", err)
			os.Exit(1)
		}
		fmt.Printf("serving clients on tcp://%s\n", tcpAddr)
	}
	if *listenDoT != "" || *listenDoH != "" {
		var cert tls.Certificate
		if *tlsCert != "" {
			c, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resolverd:", err)
				os.Exit(1)
			}
			cert = c
		} else {
			c, _, err := dnsttl.SelfSignedTLS("127.0.0.1", "::1", "localhost")
			if err != nil {
				fmt.Fprintln(os.Stderr, "resolverd:", err)
				os.Exit(1)
			}
			cert = c
			fmt.Println("dot/doh: using an ephemeral self-signed certificate (clients need -insecure)")
		}
		tcfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
		if *listenDoT != "" {
			dotAddr, err := rs.ListenDoT(*listenDoT, tcfg.Clone())
			if err != nil {
				fmt.Fprintln(os.Stderr, "resolverd:", err)
				os.Exit(1)
			}
			fmt.Printf("serving clients on dot://%s\n", dotAddr)
		}
		if *listenDoH != "" {
			dohAddr, err := rs.ListenDoH(*listenDoH, tcfg.Clone())
			if err != nil {
				fmt.Fprintln(os.Stderr, "resolverd:", err)
				os.Exit(1)
			}
			fmt.Printf("serving clients on doh://%s%s\n", dohAddr, "/dns-query")
		}
	}
	if len(pushSubs) > 0 {
		net := pushNet{ports: map[netip.Addr]uint16{}}
		type subscription struct {
			origin dnsttl.Name
			server netip.Addr
		}
		var wanted []subscription
		for _, spec := range pushSubs {
			zoneName, hostport, ok := strings.Cut(spec, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "resolverd: bad -push %q (want zone=host:port)\n", spec)
				os.Exit(2)
			}
			ap, err := netip.ParseAddrPort(hostport)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resolverd: -push %q: %v\n", spec, err)
				os.Exit(2)
			}
			net.ports[ap.Addr()] = ap.Port()
			wanted = append(wanted, subscription{dnsttl.NewName(zoneName), ap.Addr()})
		}
		sub := rs.EnablePush(dnsttl.PushConfig{
			Port:      addr.Port(),
			Net:       net,
			PollEvery: *pushPoll,
			Prefetch:  *pushPrefetch,
			Registry:  cfg.Registry,
			QueryLog:  qlogger.Tap("push"),
		})
		for _, w := range wanted {
			sub.Subscribe(w.origin, w.server)
		}
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		go func() {
			for now := range ticker.C {
				sub.Tick(now)
			}
		}()
		fmt.Printf("push plane: %d subscription(s), poll fallback %s, prefetch %v\n",
			len(wanted), sub.PollEvery(), *pushPrefetch)
	}
	if *metrics != "" {
		hist := dnsttl.NewMetricsHistory(cfg.Registry, 0)
		hist.Start(*metricsEvery)
		defer hist.Stop()
		bound, closeMetrics, err := dnsttl.ServeMetricsWith(*metrics, cfg.Registry, cfg.Tracer, hist)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resolverd: metrics:", err)
			os.Exit(1)
		}
		defer closeMetrics()
		fmt.Printf("introspection on http://%s/metrics and /trace\n", bound)
	}
	if *frontends > 1 {
		fmt.Printf("resolver farm on udp://%s (%d frontends, %s cache, %s placement, policy: %s, cap %ds, upstream %s)\n",
			addr, *frontends, *topology, *placement, pol.Centricity, pol.TTLCap, kind)
	} else {
		fmt.Printf("recursive resolver on udp://%s (policy: %s, cap %ds, upstream %s)\n",
			addr, pol.Centricity, pol.TTLCap, kind)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := client.CacheStats()
	fmt.Printf("\ncache: %d entries (%d bytes), %d hits, %d misses, %d evictions, %d prefetches\n",
		st.Entries, st.Bytes, st.Hits, st.Misses, st.Evictions, st.Prefetches)
	if fs, ok := client.FarmStats(); ok {
		fmt.Print(fs.String())
	}
	_ = rs.Close()
}
