// Command authserver serves one or more zone files authoritatively over
// UDP, using the library's server.
//
// Usage:
//
//	authserver -listen 127.0.0.1:5353 -zone example.org=example.org.zone
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dnsttl"
)

type zoneFlags []string

func (z *zoneFlags) String() string { return strings.Join(*z, ",") }
func (z *zoneFlags) Set(v string) error {
	*z = append(*z, v)
	return nil
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:5353", "UDP listen address")
		name         = flag.String("name", "ns1.example.org", "server's own name")
		metrics      = flag.String("metrics", "", "HTTP address for /metrics introspection (empty = off)")
		qlogPath     = flag.String("qlog", "", "structured query-log file; rotations shift to FILE.1.. (empty = off)")
		qlogFormat   = flag.String("qlog-format", "jsonl", "query-log encoding: jsonl or binary")
		qlogMaxBytes = flag.Int64("qlog-max-bytes", 0, "rotate the query log past this size (0 = 64 MiB)")
		qlogFiles    = flag.Int("qlog-files", 0, "rotated query-log files kept, active included (0 = 4)")
		zones        zoneFlags
	)
	flag.Var(&zones, "zone", "origin=path to a master file (repeatable)")
	flag.Parse()

	if len(zones) == 0 {
		fmt.Fprintln(os.Stderr, "authserver: at least one -zone origin=path is required")
		os.Exit(2)
	}
	srv := dnsttl.NewServer(dnsttl.NewName(*name), nil)
	for _, spec := range zones {
		origin, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "authserver: bad -zone %q (want origin=path)\n", spec)
			os.Exit(2)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver:", err)
			os.Exit(1)
		}
		z, err := dnsttl.ParseZone(string(text), dnsttl.NewName(origin))
		if err != nil {
			fmt.Fprintf(os.Stderr, "authserver: %s: %v\n", path, err)
			os.Exit(1)
		}
		srv.AddZone(z)
		fmt.Printf("loaded zone %s from %s\n", origin, path)
	}
	var reg *dnsttl.Registry
	if *metrics != "" {
		reg = dnsttl.NewRegistry(nil)
		srv.Instrument(reg)
	}
	if *qlogPath != "" {
		format, err := dnsttl.ParseQueryLogFormat(*qlogFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver:", err)
			os.Exit(2)
		}
		qlogger, err := dnsttl.NewQueryLog(dnsttl.QueryLogConfig{
			Path:     *qlogPath,
			Format:   format,
			MaxBytes: *qlogMaxBytes,
			MaxFiles: *qlogFiles,
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver: qlog:", err)
			os.Exit(1)
		}
		defer qlogger.Close()
		srv.AttachQueryLog(qlogger.Tap("udp"))
		fmt.Printf("query log: %s (%s)\n", *qlogPath, format)
	}
	addr, err := srv.ListenUDP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "authserver:", err)
		os.Exit(1)
	}
	fmt.Printf("serving on udp://%s\n", addr)
	if *metrics != "" {
		bound, closeMetrics, err := dnsttl.ServeMetrics(*metrics, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver: metrics:", err)
			os.Exit(1)
		}
		defer closeMetrics()
		fmt.Printf("introspection on http://%s/metrics\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("\n%d queries served\n", srv.QueryCount())
	_ = srv.Close()
}
