// Command authserver serves one or more zone files authoritatively over
// UDP, using the library's server.
//
// Usage:
//
//	authserver -listen 127.0.0.1:5353 -zone example.org=example.org.zone
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"dnsttl"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

type zoneFlags []string

func (z *zoneFlags) String() string { return strings.Join(*z, ",") }
func (z *zoneFlags) Set(v string) error {
	*z = append(*z, v)
	return nil
}

// setKey identifies one RRset.
type setKey struct {
	name dnsttl.Name
	typ  dnsttl.Type
}

// setFingerprint renders an RRset for equality checks. The apex SOA's
// serial is zeroed out: a push feed owns the live zone's serial, so a
// serial-only difference in the reloaded file is not a change.
func setFingerprint(s *zone.RRSet, origin dnsttl.Name) string {
	parts := make([]string, 0, len(s.RRs))
	for _, rr := range s.RRs {
		data := rr.Data
		if soa, ok := data.(dnswire.SOA); ok && rr.Name == origin {
			soa.Serial = 0
			data = soa
		}
		parts = append(parts, fmt.Sprintf("%d|%v", rr.TTL, data))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// applyZoneDiff mutates live until it matches fresh, returning the number
// of RRsets changed. Each mutation routes through the zone's watcher, so
// with -push every one becomes a feed delta and a NOTIFY fan-out.
func applyZoneDiff(live, fresh *dnsttl.Zone) int {
	origin := live.Origin
	want := map[setKey]*zone.RRSet{}
	var order []setKey
	for _, s := range fresh.AllSets() {
		k := setKey{s.Name, s.Type}
		want[k] = s
		order = append(order, k)
	}
	have := map[setKey]*zone.RRSet{}
	var gone []setKey
	for _, s := range live.AllSets() {
		k := setKey{s.Name, s.Type}
		have[k] = s
		if want[k] == nil {
			gone = append(gone, k)
		}
	}
	changed := 0
	for _, k := range order {
		ws := want[k]
		if hs := have[k]; hs != nil && setFingerprint(hs, origin) == setFingerprint(ws, origin) {
			continue
		}
		if err := live.Replace(k.name, k.typ, ws.RRs...); err != nil {
			fmt.Fprintf(os.Stderr, "authserver: reload %s/%v: %v\n", k.name, k.typ, err)
			continue
		}
		changed++
	}
	for _, k := range gone {
		if live.Remove(k.name, k.typ) {
			changed++
		}
	}
	return changed
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:5353", "UDP listen address")
		name         = flag.String("name", "ns1.example.org", "server's own name")
		metrics      = flag.String("metrics", "", "HTTP address for /metrics introspection (empty = off)")
		qlogPath     = flag.String("qlog", "", "structured query-log file; rotations shift to FILE.1.. (empty = off)")
		qlogFormat   = flag.String("qlog-format", "jsonl", "query-log encoding: jsonl or binary")
		qlogMaxBytes = flag.Int64("qlog-max-bytes", 0, "rotate the query log past this size (0 = 64 MiB)")
		qlogFiles    = flag.Int("qlog-files", 0, "rotated query-log files kept, active included (0 = 4)")
		pushFeeds    = flag.Bool("push", false, "publish every zone as a change feed: accept subscriptions, NOTIFY subscribers on each change, serve IXFR pulls")
		rrl          = flag.String("rrl", "", "response rate limiting for UDP: \"default\" or \"rps=5,burst=15,slip=2,prefix4=24,prefix6=56\" (empty = off)")
		zones        zoneFlags
	)
	flag.Var(&zones, "zone", "origin=path to a master file (repeatable)")
	flag.Parse()

	if len(zones) == 0 {
		fmt.Fprintln(os.Stderr, "authserver: at least one -zone origin=path is required")
		os.Exit(2)
	}
	srv := dnsttl.NewServer(dnsttl.NewName(*name), nil)
	type loadedZone struct {
		origin string
		path   string
		z      *dnsttl.Zone
	}
	var loaded []loadedZone
	for _, spec := range zones {
		origin, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "authserver: bad -zone %q (want origin=path)\n", spec)
			os.Exit(2)
		}
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver:", err)
			os.Exit(1)
		}
		z, err := dnsttl.ParseZone(string(text), dnsttl.NewName(origin))
		if err != nil {
			fmt.Fprintf(os.Stderr, "authserver: %s: %v\n", path, err)
			os.Exit(1)
		}
		srv.AddZone(z)
		loaded = append(loaded, loadedZone{origin, path, z})
		fmt.Printf("loaded zone %s from %s\n", origin, path)
	}
	var reg *dnsttl.Registry
	if *metrics != "" {
		reg = dnsttl.NewRegistry(nil)
		srv.Instrument(reg)
	}
	if *rrl != "" {
		cfg, err := dnsttl.ParseRRLConfig(*rrl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver:", err)
			os.Exit(2)
		}
		srv.EnableRRL(cfg)
		fmt.Printf("rrl: %g rps, burst %g, slip %d, /%d v4 /%d v6 aggregation\n",
			cfg.RPS, cfg.Burst, cfg.Slip, cfg.Prefix4, cfg.Prefix6)
	}
	var pa *dnsttl.PushAuthority
	if *pushFeeds {
		zs := make([]*dnsttl.Zone, len(loaded))
		for i, l := range loaded {
			zs[i] = l.z
		}
		var err error
		pa, err = srv.EnablePush(zs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver: push:", err)
			os.Exit(1)
		}
		if reg != nil {
			pa.Instrument(reg)
		}
		fmt.Printf("push plane: %d zone feed(s) published\n", len(zs))
	}
	// SIGHUP re-reads every zone file and applies the diff to the live
	// zones; with -push each applied RRset change NOTIFYs subscribers.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, l := range loaded {
				text, err := os.ReadFile(l.path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "authserver: reload:", err)
					continue
				}
				fresh, err := dnsttl.ParseZone(string(text), dnsttl.NewName(l.origin))
				if err != nil {
					fmt.Fprintf(os.Stderr, "authserver: reload %s: %v\n", l.path, err)
					continue
				}
				n := applyZoneDiff(l.z, fresh)
				fmt.Printf("reloaded %s: %d RRset change(s), serial %d\n", l.origin, n, l.z.Serial())
			}
		}
	}()
	if *qlogPath != "" {
		format, err := dnsttl.ParseQueryLogFormat(*qlogFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver:", err)
			os.Exit(2)
		}
		qlogger, err := dnsttl.NewQueryLog(dnsttl.QueryLogConfig{
			Path:     *qlogPath,
			Format:   format,
			MaxBytes: *qlogMaxBytes,
			MaxFiles: *qlogFiles,
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver: qlog:", err)
			os.Exit(1)
		}
		defer qlogger.Close()
		srv.AttachQueryLog(qlogger.Tap("udp"))
		fmt.Printf("query log: %s (%s)\n", *qlogPath, format)
	}
	addr, err := srv.ListenUDP(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "authserver:", err)
		os.Exit(1)
	}
	fmt.Printf("serving on udp://%s\n", addr)
	if *metrics != "" {
		bound, closeMetrics, err := dnsttl.ServeMetrics(*metrics, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "authserver: metrics:", err)
			os.Exit(1)
		}
		defer closeMetrics()
		fmt.Printf("introspection on http://%s/metrics\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("\n%d queries served\n", srv.QueryCount())
	if pa != nil {
		st := pa.Stats()
		fmt.Printf("push: %d change(s), %d notify(s) to %d subscriber(s), %d ixfr, %d axfr\n",
			st.Changes, st.Notifies, st.Subscribers, st.IXFRServed, st.AXFRServed)
	}
	_ = srv.Close()
}
