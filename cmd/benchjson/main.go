// Command benchjson runs the repo's performance-critical benchmarks
// in-process and emits a machine-readable JSON report (BENCH_PR<n>.json), so
// the perf trajectory of the codec, cache, resolver, farm and experiment
// sweeps is tracked in-tree instead of in scrollback.
//
// Usage:
//
//	go run ./cmd/benchjson -o BENCH_PR6.json
//	go run ./cmd/benchjson -smoke   # CI smoke: skips the multi-second sweeps
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/experiments"
	"dnsttl/internal/farm"
	"dnsttl/internal/loadgen"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/transport"
	"dnsttl/internal/workload"
	"dnsttl/internal/zone"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type sweepResult struct {
	Experiment      string  `json:"experiment"`
	Configs         int     `json:"configs"`
	Probes          int     `json:"probes"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Deterministic   bool    `json:"deterministic"`
	Note            string  `json:"note"`
}

// loadReport is one dnsload-style burst over a real loopback socket.
type loadReport struct {
	Scenario string `json:"scenario"`
	*loadgen.Result
}

type report struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Smoke       bool   `json:"smoke"`
	// BaselineMain pins the pre-optimization numbers (commit bdc7bee) the
	// allocation-reduction acceptance criteria compare against.
	BaselineMain map[string]float64 `json:"baseline_main"`
	Benchmarks   []benchResult      `json:"benchmarks"`
	Loadgen      []loadReport       `json:"loadgen,omitempty"`
	Sweeps       []sweepResult      `json:"sweeps,omitempty"`
	Compiler     *compilerResult    `json:"compiler,omitempty"`
}

func run(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchMessage mirrors the referral-sized response the dnswire package
// benchmarks use.
func benchMessage() *dnswire.Message {
	resp := dnswire.NewQuery(7, dnswire.NewName("www.example.org"), dnswire.TypeA).Reply()
	resp.Header.AA = true
	resp.AddAnswer(
		dnswire.NewA("www.example.org", 300, "192.0.2.80"),
		dnswire.NewA("www.example.org", 300, "192.0.2.81"),
	)
	resp.AddAuthority(
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewNS("example.org", 172800, "ns2.example.org"),
	)
	resp.AddAdditional(
		dnswire.NewA("ns1.example.org", 172800, "192.0.2.1"),
		dnswire.NewA("ns2.example.org", 172800, "192.0.2.2"),
	)
	return resp
}

func codecBenches() []benchResult {
	m := benchMessage()
	wire, err := dnswire.Encode(m)
	if err != nil {
		fatal(err)
	}
	return []benchResult{
		run("codec/encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dnswire.Encode(m); err != nil {
					b.Fatal(err)
				}
			}
		}),
		run("codec/append_encode", func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := dnswire.AppendEncode(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				buf = out[:0]
			}
		}),
		run("codec/decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dnswire.Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		}),
		run("codec/decoder_reuse", func(b *testing.B) {
			d := dnswire.NewDecoder()
			var msg dnswire.Message
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := d.Decode(wire, &msg); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

func cacheBenches() []benchResult {
	mk := func() *cache.Cache { return cache.New(simnet.NewVirtualClock(), cache.Config{}) }
	name := dnswire.NewName("www.example.org")
	entry := func(n dnswire.Name) cache.Entry {
		return cache.Entry{
			Key:  cache.Key{Name: n, Type: dnswire.TypeA},
			RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
			TTL:  300,
			Cred: cache.CredAnswerAuth,
		}
	}
	return []benchResult{
		run("cache/put_get", func(b *testing.B) {
			c := mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Put(entry(name))
				if _, _, ok := c.Get(name, dnswire.TypeA); !ok {
					b.Fatal("miss")
				}
			}
		}),
		run("cache/get_hit", func(b *testing.B) {
			c := mk()
			c.Put(entry(name))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, ok := c.Get(name, dnswire.TypeA); !ok {
					b.Fatal("miss")
				}
			}
		}),
		run("cache/get_hit_lru", func(b *testing.B) {
			// Recency maintenance on the hot path must stay allocation-free
			// (also pinned by TestGetHitAllocFreeLRU).
			c := cache.New(simnet.NewVirtualClock(), cache.Config{Eviction: cache.EvictLRU})
			c.Put(entry(name))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, ok := c.Get(name, dnswire.TypeA); !ok {
					b.Fatal("miss")
				}
			}
		}),
		run("cache/put_bounded_lru", func(b *testing.B) {
			// Byte-bounded Put under constant eviction pressure: a 4 KB bound
			// holds ~30 entries, so nearly every Put evicts.
			c := cache.New(simnet.NewVirtualClock(), cache.Config{
				Eviction: cache.EvictLRU, MaxBytes: 4 << 10,
			})
			names := make([]dnswire.Name, 256)
			for i := range names {
				names[i] = dnswire.NewName(fmt.Sprintf("host%03d.example.org", i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Put(entry(names[i%len(names)]))
			}
		}),
		run("cache/put_bounded_slru", func(b *testing.B) {
			// Same pressure through the TinyLFU admission path (sketch lookups
			// plus doorkeeper per candidate).
			c := cache.New(simnet.NewVirtualClock(), cache.Config{
				Eviction: cache.EvictSLRU, MaxBytes: 4 << 10, Capacity: 64,
			})
			names := make([]dnswire.Name, 256)
			for i := range names {
				names[i] = dnswire.NewName(fmt.Sprintf("host%03d.example.org", i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Put(entry(names[i%len(names)]))
			}
		}),
		run("cache/purge_glue_of", func(b *testing.B) {
			c := mk()
			for i := 0; i < 8192; i++ {
				c.Put(entry(dnswire.NewName(fmt.Sprintf("host%05d.example.org", i))))
			}
			owner := dnswire.NewName("frag.example.org")
			glue := entry(dnswire.NewName("ns1.frag.example.org"))
			glue.GlueOf = owner
			glue.Cred = cache.CredAdditional
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Put(glue)
				if n := c.PurgeGlueOf(owner); n != 1 {
					b.Fatalf("purged %d, want 1", n)
				}
			}
		}),
	}
}

// workloadBenches pins the generator's hot path: the O(1) alias-method
// Zipf draw that replaced the former O(log n) binary search over the
// cumulative distribution. The binary-search reference is timed inline on
// the same masses so the report carries the comparison, not just the
// absolute number.
// sink keeps the draw results observable so the loops aren't dead code.
var sink int

func workloadBenches() []benchResult {
	const names = 1 << 20 // planet-scale name universe
	g := workload.New(dnswire.NewName("bench.example.org"), names, 1.0, 100, 7)
	masses := g.Masses()
	cdf := make([]float64, len(masses))
	sum := 0.0
	for i, m := range masses {
		sum += m
		cdf[i] = sum
	}
	alias := workload.NewAlias(masses)
	return []benchResult{
		run("workload/zipf_draw_alias", func(b *testing.B) {
			b.ReportAllocs()
			u := 0.0
			for i := 0; i < b.N; i++ {
				sink = alias.Draw(u)
				u += 0.6180339887498949 // low-discrepancy sweep of [0,1)
				if u >= 1 {
					u--
				}
			}
		}),
		run("workload/zipf_draw_binsearch", func(b *testing.B) {
			b.ReportAllocs()
			u := 0.0
			for i := 0; i < b.N; i++ {
				lo, hi := 0, len(cdf)-1
				for lo < hi {
					mid := (lo + hi) / 2
					if cdf[mid] < u*sum {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				sink = lo
				u += 0.6180339887498949
				if u >= 1 {
					u--
				}
			}
		}),
		run("workload/generator_next", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, name := g.Next()
				sink = len(name)
			}
		}),
	}
}

// compilerBench runs the planet-scale tier and reports the workload
// compiler's headline: simulated user-seconds delivered per wall-clock
// second across twelve (population × TTL) day-long cells, 1M–100M users.
type compilerResult struct {
	Cells       int     `json:"cells"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"user_seconds_per_wall_second"`
	Hit10MT300  float64 `json:"hit_10m_ttl300"`
	Amp10MT300  float64 `json:"amp_10m_ttl300"`
}

func compilerBench() compilerResult {
	r := experiments.PlanetScale()
	return compilerResult{
		Cells:       12,
		WallSeconds: r.Metrics["wall_seconds"],
		Throughput:  r.Metrics["throughput_user_seconds_per_wall_second"],
		Hit10MT300:  r.Metrics["hit_10m_ttl300"],
		Amp10MT300:  r.Metrics["amp_10m_ttl300"],
	}
}

// resolveWorld is the two-level delegation world the resolver and farm
// benchmarks walk: root → example.org, one A record.
type resolveWorld struct {
	clock    *simnet.VirtualClock
	net      *simnet.Network
	rootAddr netip.Addr
}

func newResolveWorld(seed int64) *resolveWorld {
	w := &resolveWorld{
		clock:    simnet.NewVirtualClock(),
		net:      simnet.NewNetwork(seed),
		rootAddr: netip.MustParseAddr("192.88.50.1"),
	}
	orgAddr := netip.MustParseAddr("192.88.50.2")
	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, w.rootAddr.String()),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 172800, orgAddr.String()),
	)
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 86400, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, orgAddr.String()),
		dnswire.NewA("www.example.org", 86400, "192.0.2.80"),
	)
	rootSrv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), w.clock)
	rootSrv.AddZone(root)
	w.net.Attach(w.rootAddr, rootSrv)
	orgSrv := authoritative.NewServer(dnswire.NewName("ns1.example.org"), w.clock)
	orgSrv.AddZone(org)
	w.net.Attach(orgAddr, orgSrv)
	return w
}

func resolveBenches() []benchResult {
	name := dnswire.NewName("www.example.org")
	return []benchResult{
		run("resolve/cache_hit", func(b *testing.B) {
			w := newResolveWorld(1)
			r := resolver.New(netip.MustParseAddr("10.50.0.1"), resolver.DefaultPolicy(),
				w.net, w.clock, []netip.Addr{w.rootAddr}, 1)
			if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Resolve(name, dnswire.TypeA)
				if err != nil || !res.CacheHit {
					b.Fatal("expected cache hit")
				}
			}
		}),
		run("resolve/cold_walk", func(b *testing.B) {
			w := newResolveWorld(1)
			r := resolver.New(netip.MustParseAddr("10.50.0.1"), resolver.DefaultPolicy(),
				w.net, w.clock, []netip.Addr{w.rootAddr}, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Cache.Flush()
				if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
					b.Fatal(err)
				}
				w.clock.Advance(time.Second)
			}
		}),
		run("resolve/retry_cold_walk", func(b *testing.B) {
			// Full retry plane armed on a healthy network: the happy path
			// must cost the same as resolve/cold_walk (no retries fire, and
			// the plane is allocation-neutral — pinned by
			// TestRetryPlaneAllocNeutral).
			w := newResolveWorld(1)
			pol := resolver.DefaultPolicy()
			pol.Retry = resolver.RetryPolicy{
				Attempts: 4, Backoff: 200 * time.Millisecond, Jitter: 0.5,
				OrderBySRTT: true,
			}
			r := resolver.New(netip.MustParseAddr("10.50.0.1"), pol,
				w.net, w.clock, []netip.Addr{w.rootAddr}, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Cache.Flush()
				res, err := r.Resolve(name, dnswire.TypeA)
				if err != nil {
					b.Fatal(err)
				}
				if res.Retries != 0 {
					b.Fatal("retries fired on a healthy network")
				}
				w.clock.Advance(time.Second)
			}
		}),
		run("farm/resolve_shared", func(b *testing.B) {
			w := newResolveWorld(1)
			f := farm.New(farm.Config{
				Frontends: 8, Topology: farm.Shared, Placement: farm.PlaceRoundRobin,
				Coalesce: true, Policy: resolver.DefaultPolicy(), Seed: 7,
			}, netip.MustParseAddr("10.50.0.1"), w.net, w.clock, []netip.Addr{w.rootAddr})
			if _, err := f.Resolve(name, dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Resolve(name, dnswire.TypeA); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

// sweepBench times the outage sweep (25 independent TTL × outage-regime ×
// policy configurations) serially and with a worker pool, and checks the two runs
// agree. On a single-CPU host the wall-clock speedup is necessarily ≈1; the
// worker count and CPU count are recorded so the number can be read
// honestly.
func sweepBench(probes int) sweepResult {
	const seed = 42
	// At least 4 workers so the parallel driver is exercised (and its
	// determinism checked) even on single-CPU hosts.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	// Best of three runs each, to keep scheduler noise out of the ratio.
	time3 := func(w int) (time.Duration, *experiments.Report) {
		best := time.Duration(0)
		var rep *experiments.Report
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			r := experiments.OutageSweep(probes, w, seed)
			if d := time.Since(t0); best == 0 || d < best {
				best, rep = d, r
			}
		}
		return best, rep
	}
	serialDur, serial := time3(1)
	parallelDur, parallel := time3(workers)

	speedup := 0.0
	if parallelDur > 0 {
		speedup = serialDur.Seconds() / parallelDur.Seconds()
	}
	return sweepResult{
		Experiment:      "outage-sweep",
		Configs:         25,
		Probes:          probes,
		SerialSeconds:   serialDur.Seconds(),
		ParallelWorkers: workers,
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         speedup,
		Deterministic:   serial.Text == parallel.Text,
		Note: fmt.Sprintf("wall-clock speedup is bounded by the host's %d CPU(s); "+
			"cells are independent, so it approaches min(workers, configs) with real cores",
			runtime.NumCPU()),
	}
}

// pressureSweepBench times the cache-pressure grid (20 eviction-policy ×
// cache-size × TTL cells, each an isolated world) serially and fanned out,
// and checks byte-identical reports — the same determinism contract the
// golden test pins.
func pressureSweepBench(queries int) sweepResult {
	const seed = 42
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	time3 := func(w int) (time.Duration, []byte) {
		best := time.Duration(0)
		var rep []byte
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			r := experiments.PressureRun(queries, w, seed).JSON()
			if d := time.Since(t0); best == 0 || d < best {
				best, rep = d, r
			}
		}
		return best, rep
	}
	serialDur, serial := time3(1)
	parallelDur, parallel := time3(workers)

	speedup := 0.0
	if parallelDur > 0 {
		speedup = serialDur.Seconds() / parallelDur.Seconds()
	}
	return sweepResult{
		Experiment:      "cache-pressure",
		Configs:         20,
		Probes:          queries,
		SerialSeconds:   serialDur.Seconds(),
		ParallelWorkers: workers,
		ParallelSeconds: parallelDur.Seconds(),
		Speedup:         speedup,
		Deterministic:   string(serial) == string(parallel),
		Note: fmt.Sprintf("queries per cell; wall-clock speedup is bounded by the host's %d CPU(s)",
			runtime.NumCPU()),
	}
}

// loadgenBenches drives the ZDNS-style engine over real loopback sockets:
// raw authoritative serving over UDP and pipelined TCP, and a recursive
// front-end (cache-hot) over UDP — the loopback-QPS numbers the transport
// plane is judged by.
func loadgenBenches(smoke bool) []loadReport {
	udpCount, tcpCount := 100000, 30000
	if smoke {
		udpCount, tcpCount = 2000, 2000
	}
	wl, err := loadgen.ParseWorkload("www.example.org:A")
	if err != nil {
		fatal(err)
	}

	burst := func(scenario string, kind transport.Kind, target netip.AddrPort, count int) loadReport {
		tr, err := transport.New(transport.Config{Kind: kind, Timeout: 3 * time.Second})
		if err != nil {
			fatal(err)
		}
		defer tr.Close()
		res, err := loadgen.Run(loadgen.Config{
			Target:        target,
			Transport:     tr,
			TransportName: kind.String(),
			Workload:      wl,
			Workers:       16,
			Count:         count,
		})
		if err != nil {
			fatal(err)
		}
		return loadReport{Scenario: scenario, Result: res}
	}

	// Raw authoritative serving plane.
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 86400, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, "192.0.2.1"),
		dnswire.NewA("www.example.org", 86400, "192.0.2.80"),
	)
	auth := authoritative.NewServer(dnswire.NewName("ns1.example.org"), simnet.NewVirtualClock())
	auth.AddZone(org)
	us := &authoritative.UDPServer{Server: auth}
	udpAddr, err := us.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer us.Close()
	ts := &authoritative.TCPServer{Server: auth}
	tcpAddr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer ts.Close()

	// A recursive front-end over its own loopback socket, iterating into the
	// simulated delegation world; after the first query every answer is a
	// cache hit — the resolverd steady state.
	w := newResolveWorld(1)
	r := resolver.New(netip.MustParseAddr("10.50.0.1"), resolver.DefaultPolicy(),
		w.net, w.clock, []netip.Addr{w.rootAddr}, 1)
	rs := &authoritative.UDPServer{Handler: resolver.Handler{R: r}}
	rsAddr, err := rs.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer rs.Close()

	return []loadReport{
		burst("authoritative/udp", transport.UDP, udpAddr, udpCount),
		burst("authoritative/tcp-pipelined", transport.TCP, tcpAddr, tcpCount),
		burst("resolver-frontend/udp", transport.UDP, rsAddr, udpCount),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "BENCH_PR7.json", "output file ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: skip the multi-second sweep timings")
	probes := flag.Int("probes", 120, "probe count per sweep cell")
	flag.Parse()

	rep := report{
		GeneratedBy: "go run ./cmd/benchjson",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		// Measured at commit bdc7bee (pre-optimization main), same
		// referral-sized message and cache workloads.
		BaselineMain: map[string]float64{
			"codec/encode ns_per_op":      1945,
			"codec/encode allocs_per_op":  12,
			"codec/decode ns_per_op":      2637,
			"codec/decode allocs_per_op":  32,
			"cache/put_get ns_per_op":     690.9,
			"cache/put_get allocs_per_op": 5,
			"cache/get_hit ns_per_op":     69.32,
			"cache/get_hit allocs_per_op": 0,
			"name/canonicalize ns_per_op": 132.1,
			"name/canonicalize allocs_op": 2,
		},
	}
	rep.Benchmarks = append(rep.Benchmarks, codecBenches()...)
	rep.Benchmarks = append(rep.Benchmarks, cacheBenches()...)
	rep.Benchmarks = append(rep.Benchmarks, resolveBenches()...)
	rep.Benchmarks = append(rep.Benchmarks, workloadBenches()...)
	rep.Loadgen = loadgenBenches(*smoke)
	cb := compilerBench()
	rep.Compiler = &cb
	if !*smoke {
		rep.Sweeps = append(rep.Sweeps, sweepBench(*probes))
		rep.Sweeps = append(rep.Sweeps, pressureSweepBench(2000))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d sweeps)\n", *out, len(rep.Benchmarks), len(rep.Sweeps))
}
