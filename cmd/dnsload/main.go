// Command dnsload is the repo's ZDNS-style load engine: it fans a
// qname/qtype workload through a bounded worker pool over one of the four
// real-socket transports and reports QPS, a success/error taxonomy, and
// p50/p90/p99 latency.
//
// Usage:
//
//	dnsload -server 127.0.0.1 -port 5300 -workload www.example.test:A -count 100000
//	dnsload -transport tcp -workers 32 -duration 5s -workload 'q{i}.example.test:A*10000'
//	dnsload -transport doh -insecure -qps 1000 -workload @queries.txt -json -
//
// The process exits non-zero when the run saw any protocol error
// (timeouts, network errors, undecodable responses) and -fail-on-error is
// set, which is how CI gates the loopback smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsttl"
	"dnsttl/internal/loadgen"
	"dnsttl/internal/transport"
)

func main() {
	var (
		server      = flag.String("server", "127.0.0.1", "target server address")
		port        = flag.Uint("port", 0, "target port (0 = transport default: 53/53/853/443)")
		trans       = flag.String("transport", "udp", "transport: udp, tcp, dot, or doh")
		poolSize    = flag.Int("pool-size", transport.DefaultPoolSize, "pooled connections per upstream")
		workers     = flag.Int("workers", 16, "concurrent query workers")
		count       = flag.Int("count", 0, "stop after this many queries (0 = use -duration)")
		duration    = flag.Duration("duration", 0, "stop after this wall time (0 = use -count)")
		qps         = flag.Int("qps", 0, "cap the aggregate send rate (0 = unbounded)")
		workload    = flag.String("workload", "www.example.org:A", "workload spec: items 'name[:type][*count]' ('{i}' expands), or @file")
		timeout     = flag.Duration("timeout", 3*time.Second, "per-query timeout")
		insecure    = flag.Bool("insecure", false, "skip TLS verification for dot/doh (self-signed test certs)")
		jsonOut     = flag.String("json", "", "write the result as JSON to this file ('-' = stdout)")
		out         = flag.String("out", "text", "stdout summary format: text or json (json implies -quiet)")
		failOnError = flag.Bool("fail-on-error", false, "exit 1 if the run saw any protocol error")
		quiet       = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()
	if *out != "text" && *out != "json" {
		fatal(fmt.Errorf("-out must be text or json, not %q", *out))
	}

	kind, err := dnsttl.ParseTransportKind(*trans)
	if err != nil {
		fatal(err)
	}
	addr, err := netip.ParseAddr(*server)
	if err != nil {
		fatal(err)
	}
	dstPort := uint16(*port)
	if dstPort == 0 {
		dstPort = kind.DefaultPort()
	}
	wl, err := loadgen.ParseWorkload(*workload)
	if err != nil {
		fatal(err)
	}
	if *count <= 0 && *duration <= 0 {
		*count = 10000
	}

	reg := dnsttl.NewRegistry(nil)
	tr, err := transport.New(transport.Config{
		Kind:     kind,
		PoolSize: *poolSize,
		Timeout:  *timeout,
		Insecure: *insecure,
		Metrics:  transport.NewMetrics(reg),
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	res, err := loadgen.Run(loadgen.Config{
		Target:        netip.AddrPortFrom(addr, dstPort),
		Transport:     tr,
		TransportName: kind.String(),
		Workload:      wl,
		Workers:       *workers,
		Count:         *count,
		Duration:      *duration,
		QPS:           *qps,
		Registry:      reg,
	})
	if err != nil {
		fatal(err)
	}

	if *out == "text" && !*quiet {
		fmt.Print(res)
		snap := reg.Snapshot()
		fmt.Printf("  pool: %d dials, %d reuses, %d tls handshakes, %d tcp fallbacks\n",
			snap.Counters[transport.MetricDials], snap.Counters[transport.MetricReuses],
			snap.Counters[transport.MetricHandshakes], snap.Counters[transport.MetricTCPFallbacks])
	}
	if *out == "json" || *jsonOut != "" {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		enc = append(enc, '\n')
		// -out json puts the summary on stdout; -json FILE additionally (or
		// alternatively) writes it to a file, '-' meaning stdout once.
		if *out == "json" || *jsonOut == "-" {
			os.Stdout.Write(enc)
		}
		if *jsonOut != "" && *jsonOut != "-" {
			if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *failOnError && res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "dnsload: %d protocol errors\n", res.Errors)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsload:", err)
	os.Exit(1)
}
