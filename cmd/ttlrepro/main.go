// Command ttlrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	ttlrepro -list
//	ttlrepro -experiment figure10 -probes 1000
//	ttlrepro -experiment all -scale full
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dnsttl"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		scale      = flag.String("scale", "quick", "quick or full")
		probes     = flag.Int("probes", 0, "override vantage-point count")
		crawlScale = flag.Float64("crawlscale", 0, "override crawl list scale")
		seed       = flag.Int64("seed", 42, "random seed")
		workers    = flag.Int("workers", 0, "worker pool for sweep experiments (0 = GOMAXPROCS, 1 = serial; results are identical)")
		chaos      = flag.String("chaos", "", "custom fault schedule for the chaos experiment, e.g. 'outage:192.88.0.7:1200s+2400s' (see ParseFaultSchedule)")
		asJSON     = flag.Bool("json", false, "emit reports as JSON lines")
		csvDir     = flag.String("csvdir", "", "also write each figure's CDF series as CSV into this directory")
	)
	flag.Parse()
	emit := func(r *dnsttl.Report) {
		if *csvDir != "" && len(r.Series) > 0 {
			name := strings.ToLower(strings.NewReplacer(" ", "-", "/", "-", "§", "s").Replace(r.ID)) + ".csv"
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttlrepro:", err)
				os.Exit(1)
			}
			if err := r.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "ttlrepro:", err)
				os.Exit(1)
			}
			_ = f.Close()
		}
		if *asJSON {
			out, err := json.Marshal(r)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttlrepro:", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Println(r)
		fmt.Println()
	}

	if *list {
		for _, id := range dnsttl.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}

	sc := dnsttl.QuickScale()
	if *scale == "full" {
		sc = dnsttl.FullScale()
	}
	if *probes > 0 {
		sc.Probes = *probes
	}
	if *crawlScale > 0 {
		sc.CrawlScale = *crawlScale
	}
	sc.Seed = *seed
	sc.Workers = *workers
	sc.Chaos = *chaos

	if *experiment == "all" {
		reports, err := dnsttl.RunAllExperiments(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttlrepro:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			emit(r)
		}
		return
	}
	r, err := dnsttl.RunExperiment(*experiment, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttlrepro:", err)
		os.Exit(1)
	}
	emit(r)
}
