// Command ttlcrawl builds the synthetic Internet and runs the §5.1 crawl,
// printing Tables 5, 8 and 9 and the Figure 9 TTL CDFs.
//
// Usage:
//
//	ttlcrawl -scale 0.25 -seed 42
package main

import (
	"flag"
	"fmt"

	"dnsttl/internal/experiments"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.1, "list-size multiplier (1.0 ≈ 55k domains)")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	w, results := experiments.CrawlWorld(*scale, *seed)
	for _, r := range []*experiments.Report{
		experiments.Table5(results),
		experiments.Tables6And7(w, *seed),
		experiments.Table8(results),
		experiments.Table9(results),
		experiments.Figure9(results),
	} {
		fmt.Println(r)
		fmt.Println()
	}
}
