// Command dnstop is the offline query-log analyzer closing the
// observability loop: it reads the rotated structured logs a resolverd or
// authserver captured with -qlog, feeds them through the internal/entrada
// passive-measurement pipeline (§3.4), and reports cache hit rates, TTL
// distributions, interarrival quantiles, and the resolver centricity
// census — the paper's Figures 3/4 statistics computed from live traffic.
//
//	dnstop /tmp/resolverd.qlog            # whole rotated set, text report
//	dnstop -json /tmp/resolverd.qlog      # machine-readable summary
//	dnstop -points response -min-gap 2s LOG
//	dnstop -promlint metrics.prom         # lint a Prometheus exposition
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dnsttl/internal/entrada"
	"dnsttl/internal/obs"
	"dnsttl/internal/qlog"
	"dnsttl/internal/stats"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit the analysis as JSON instead of text")
		points   = flag.String("points", "all", "capture points to analyze: comma list of client,response,upstream, or all")
		minGap   = flag.Duration("min-gap", 2*time.Second, "drop interarrival gaps below this (retransmission filter, paper uses 2s)")
		noRotate = flag.Bool("no-rotated", false, "read only the named file, not its rotated set (file.N ...)")
		promlint = flag.String("promlint", "", "lint the Prometheus text exposition in FILE and exit (promtool check metrics style)")
	)
	flag.Parse()

	if *promlint != "" {
		os.Exit(runPromlint(*promlint))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dnstop [flags] QLOG-FILE")
		flag.PrintDefaults()
		os.Exit(2)
	}
	mask, err := qlog.ParsePointMask(*points)
	if err != nil {
		fatal(err)
	}

	paths := []string{flag.Arg(0)}
	if !*noRotate {
		if set, err := qlog.RotatedSet(flag.Arg(0)); err == nil {
			paths = set
		}
	}
	recs, decodeErrs, err := qlog.ReadAll(paths...)
	if err != nil {
		fatal(err)
	}

	rep := analyze(recs, mask, *minGap)
	rep.Files = paths
	rep.DecodeErrors = decodeErrs

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printText(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnstop:", err)
	os.Exit(1)
}

func runPromlint(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnstop:", err)
		return 1
	}
	defer f.Close()
	problems := obs.LintExposition(f)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d problem(s)\n", path, len(problems))
		return 1
	}
	fmt.Printf("%s: exposition OK\n", path)
	return 0
}

// quantiles is the p50/p90/p99 shape every distribution in the report uses.
type quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
}

func sampleQuantiles(s *stats.Sample) quantiles {
	if s.Len() == 0 {
		return quantiles{}
	}
	return quantiles{
		Count: s.Len(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Mean:  s.Mean(),
	}
}

// report is the full analysis, JSON-ready.
type report struct {
	Files        []string `json:"files"`
	DecodeErrors int      `json:"decode_errors"`
	Records      int      `json:"records"`
	Span         float64  `json:"span_seconds"`

	ByPoint     map[string]int `json:"by_point,omitempty"`
	ByTransport map[string]int `json:"by_transport,omitempty"`
	ByOutcome   map[string]int `json:"by_outcome,omitempty"`
	ByRCode     map[string]int `json:"by_rcode,omitempty"`

	// HitRate is hits/(hits+misses+stale+coalesced) over response-out
	// records — comparable to the resolver's own cache counters.
	HitRate float64 `json:"hit_rate"`

	TTLSeconds    quantiles `json:"ttl_seconds"`     // answer TTLs on responses
	LatencyMS     quantiles `json:"latency_ms"`      // response-out latency
	UpstreamRTTMS quantiles `json:"upstream_rtt_ms"` // upstream exchange RTT

	// Entrada statistics over (resolver, qname) groups (§3.4).
	Groups            int       `json:"groups"`
	QueriesPerGroup   quantiles `json:"queries_per_group"`
	MinInterarrivalS  quantiles `json:"min_interarrival_seconds"`
	InterarrivalS     quantiles `json:"interarrival_seconds"`
	FractionMulti     float64   `json:"fraction_multi_query"`
	UniqueResolvers   int       `json:"unique_resolvers"`
	SingleButMultiPct float64   `json:"single_but_multi_elsewhere_fraction"`
}

// analyze distills the record stream: taxonomy counts, hit rate, TTL and
// latency distributions, and the entrada group statistics.
func analyze(recs []qlog.Record, mask qlog.PointMask, minGap time.Duration) report {
	rep := report{
		ByPoint:     map[string]int{},
		ByTransport: map[string]int{},
		ByOutcome:   map[string]int{},
		ByRCode:     map[string]int{},
	}
	w := entrada.NewWarehouse()
	ttls := stats.NewSample()
	lat := stats.NewSample()
	rtt := stats.NewSample()
	var hits, answered int
	var minT, maxT int64
	for i := range recs {
		r := &recs[i]
		if mask&(1<<r.Point) == 0 {
			continue
		}
		rep.Records++
		if minT == 0 || r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
		rep.ByPoint[r.Point.String()]++
		rep.ByTransport[r.Transport]++
		if r.Outcome != qlog.OutcomeNone {
			rep.ByOutcome[r.Outcome.String()]++
		}
		switch r.Point {
		case qlog.PointResponseOut:
			rep.ByRCode[r.RCode.String()]++
			if r.TTL > 0 {
				ttls.Add(float64(r.TTL))
			}
			lat.Add(float64(r.LatencyUS) / 1000)
			switch r.Outcome {
			case qlog.OutcomeHit:
				hits++
				answered++
			case qlog.OutcomeMiss, qlog.OutcomeStale, qlog.OutcomeCoalesced:
				answered++
			}
			// Response-out records are the capture the paper's passive
			// methodology sees at the server: client ↔ resolver pairs.
			w.Ingest(entrada.Row{
				Time:     time.Unix(0, r.Time),
				Resolver: r.Client,
				Name:     r.Name,
				Type:     r.Type,
			})
		case qlog.PointClientIn:
			// Counted in the taxonomy; entrada uses response-out (which
			// carries outcome and TTL) to avoid double-ingesting pairs.
		case qlog.PointUpstream:
			if r.Outcome == qlog.OutcomeNone {
				rtt.Add(float64(r.LatencyUS) / 1000)
			}
		}
	}
	if answered > 0 {
		rep.HitRate = float64(hits) / float64(answered)
	}
	if maxT > minT {
		rep.Span = float64(maxT-minT) / float64(time.Second)
	}
	rep.TTLSeconds = sampleQuantiles(ttls)
	rep.LatencyMS = sampleQuantiles(lat)
	rep.UpstreamRTTMS = sampleQuantiles(rtt)

	census := w.CentricityCensus()
	rep.Groups = census.Groups
	rep.UniqueResolvers = census.UniqueResolvers
	rep.FractionMulti = census.FractionMultiQuery()
	if census.SingleQuery > 0 {
		rep.SingleButMultiPct = float64(census.SingleButMultiElsewhere) / float64(census.SingleQuery)
	}
	rep.QueriesPerGroup = sampleQuantiles(w.QueryCountSample(0))
	rep.MinInterarrivalS = sampleQuantiles(w.MinInterarrivalSample(minGap))
	all := stats.NewSample()
	for _, g := range w.Groups() {
		for _, gap := range g.Interarrivals(minGap) {
			all.Add(gap.Seconds())
		}
	}
	rep.InterarrivalS = sampleQuantiles(all)
	return rep
}

func printText(rep report) {
	fmt.Printf("files:          %v\n", rep.Files)
	fmt.Printf("records:        %d (decode errors %d, span %.1fs)\n",
		rep.Records, rep.DecodeErrors, rep.Span)
	printCountMap("by point", rep.ByPoint)
	printCountMap("by transport", rep.ByTransport)
	printCountMap("by outcome", rep.ByOutcome)
	printCountMap("by rcode", rep.ByRCode)
	fmt.Printf("hit rate:       %.1f%%\n", rep.HitRate*100)
	printQuantiles("answer TTL (s)", rep.TTLSeconds)
	printQuantiles("latency (ms)", rep.LatencyMS)
	printQuantiles("upstream RTT (ms)", rep.UpstreamRTTMS)
	fmt.Printf("entrada:        %d groups, %d resolvers, %.1f%% multi-query, %.1f%% single-but-multi-elsewhere\n",
		rep.Groups, rep.UniqueResolvers, rep.FractionMulti*100, rep.SingleButMultiPct*100)
	printQuantiles("queries/group", rep.QueriesPerGroup)
	printQuantiles("min interarrival (s)", rep.MinInterarrivalS)
	printQuantiles("interarrival (s)", rep.InterarrivalS)
}

func printCountMap(label string, m map[string]int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-15s", label+":")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, m[k])
	}
	fmt.Println()
}

func printQuantiles(label string, q quantiles) {
	if q.Count == 0 {
		return
	}
	fmt.Printf("%-22s n=%-7d p50=%-9.3g p90=%-9.3g p99=%-9.3g mean=%.3g\n",
		label+":", q.Count, q.P50, q.P90, q.P99, q.Mean)
}
