package dnsttl

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

// TestConcurrentLookups hammers one Client from many goroutines over real
// UDP — the shape a resolver daemon sees. Run with -race to check the
// locking across resolver, cache and the UDP path.
func TestConcurrentLookups(t *testing.T) {
	rootZone, err := ParseZone(rootZoneText, NewName("."))
	if err != nil {
		t.Fatal(err)
	}
	orgZone, err := ParseZone(orgZoneText, NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewName("a.root-servers.net"), nil)
	srv.AddZone(rootZone)
	srv.AddZone(orgZone)
	addr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{addr.Addr()},
		Net:   UDPNet{Port: addr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const lookups = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*lookups)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				res, err := client.Lookup(NewName("www.example.org"), TypeA)
				if err != nil {
					errs <- err
					return
				}
				if res.Msg.Header.RCode != RCodeNoError || len(res.Msg.Answer) != 1 {
					errs <- errUnexpected(res.Msg.Header.RCode.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := client.CacheStats()
	if st.Hits == 0 {
		t.Errorf("concurrent lookups never hit the cache: %+v", st)
	}
}

type errUnexpected string

func (e errUnexpected) Error() string { return "unexpected rcode " + string(e) }
