package dnsttl

import (
	"crypto/tls"
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
)

// RecursiveServer fronts a Client with real-socket listeners — UDP, TCP,
// DoT, and DoH — turning the library into a runnable recursive resolver
// daemon (cmd/resolverd). Each Listen* method is independent; any subset
// may be active.
type RecursiveServer struct {
	Client *Client
	u      *authoritative.UDPServer
	t      *authoritative.TCPServer
	dot    *authoritative.TCPServer
	doh    *authoritative.DoHServer
}

// ServeDNS answers one client query through the resolver: decode, resolve
// (cache first), re-stamp the client's transaction ID, encode.
func (rs *RecursiveServer) ServeDNS(wire []byte, from netip.Addr) []byte {
	q, err := dnswire.Decode(wire)
	if err != nil || len(q.Question) == 0 {
		if len(wire) < 12 {
			return nil
		}
		resp := &Message{Header: Header{
			ID: uint16(wire[0])<<8 | uint16(wire[1]), QR: true, RCode: dnswire.RCodeFormErr,
		}}
		out, err := Encode(resp)
		if err != nil {
			return nil
		}
		return out
	}
	res, err := rs.Client.Lookup(q.Q().Name, q.Q().Type)
	if err != nil || res == nil {
		resp := q.Reply()
		resp.Header.RCode = RCodeServFail
		resp.Header.RA = true
		out, _ := Encode(resp)
		return out
	}
	msg := res.Msg
	msg.Header.ID = q.Header.ID
	msg.Header.RD = q.Header.RD
	out, err := dnswire.EncodeWithLimit(msg, dnswire.MaxEDNSSize)
	if err != nil {
		return nil
	}
	return out
}

// ListenUDP binds addr and serves client queries until Close.
func (rs *RecursiveServer) ListenUDP(addr string) (netip.AddrPort, error) {
	rs.u = &authoritative.UDPServer{Handler: rs}
	return rs.u.Listen(addr)
}

// ListenTCP binds addr for persistent-TCP clients (RFC 7766) until Close.
func (rs *RecursiveServer) ListenTCP(addr string) (netip.AddrPort, error) {
	rs.t = &authoritative.TCPServer{Handler: rs}
	return rs.t.Listen(addr)
}

// ListenDoT binds addr for DNS-over-TLS clients (RFC 7858) until Close.
func (rs *RecursiveServer) ListenDoT(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	rs.dot = &authoritative.TCPServer{Handler: rs, TLS: cfg}
	return rs.dot.Listen(addr)
}

// ListenDoH binds addr for DNS-over-HTTPS clients (RFC 8484) until Close.
func (rs *RecursiveServer) ListenDoH(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	rs.doh = &authoritative.DoHServer{Handler: rs, TLS: cfg}
	return rs.doh.Listen(addr)
}

// Close stops every active listener.
func (rs *RecursiveServer) Close() error {
	var err error
	if rs.u != nil {
		err = rs.u.Close()
	}
	if rs.t != nil {
		if e := rs.t.Close(); err == nil {
			err = e
		}
	}
	if rs.dot != nil {
		if e := rs.dot.Close(); err == nil {
			err = e
		}
	}
	if rs.doh != nil {
		if e := rs.doh.Close(); err == nil {
			err = e
		}
	}
	return err
}
