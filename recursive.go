package dnsttl

import (
	"context"
	"crypto/tls"
	"net/netip"
	"sync/atomic"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/middleware"
	"dnsttl/internal/push"
	"dnsttl/internal/qlog"
)

// RecursiveServer fronts a Client with real-socket listeners — UDP, TCP,
// DoT, and DoH — turning the library into a runnable recursive resolver
// daemon (cmd/resolverd). Each Listen* method is independent; any subset
// may be active.
type RecursiveServer struct {
	Client *Client
	// QueryLog, when non-nil, captures a client-in record as each query
	// arrives and a response-out record (rcode, answer TTL, cache outcome,
	// wall latency) as each response leaves, labeled with the listener's
	// transport ("udp", "tcp", "dot", "doh"). Nil disables capture at the
	// cost of one pointer check per query.
	QueryLog *qlog.Logger

	// push, when set, claims NOTIFY-opcode datagrams on every listener
	// (see EnablePush): the change-feed plane's notifies purge the client's
	// caches instead of being answered as queries. Atomic because
	// EnablePush may race with already-running listeners.
	push atomic.Pointer[push.Subscriber]

	u   *authoritative.UDPServer
	t   *authoritative.TCPServer
	dot *authoritative.TCPServer
	doh *authoritative.DoHServer
}

// transportHandler binds one listener's queries to its qlog tap.
type transportHandler struct {
	rs  *RecursiveServer
	tap *qlog.Tap
}

func (h transportHandler) ServeDNS(wire []byte, from netip.Addr) []byte {
	return h.rs.serveDNS(wire, from, h.tap)
}

// ServeDNS answers one client query through the resolver: decode, resolve
// (cache first), re-stamp the client's transaction ID, encode. Direct
// calls (tests, embedding) log under the "direct" transport label.
func (rs *RecursiveServer) ServeDNS(wire []byte, from netip.Addr) []byte {
	return rs.serveDNS(wire, from, rs.QueryLog.Tap("direct"))
}

func (rs *RecursiveServer) serveDNS(wire []byte, from netip.Addr, tap *qlog.Tap) []byte {
	q, err := dnswire.Decode(wire)
	if err != nil || len(q.Question) == 0 {
		if len(wire) < 12 {
			return nil
		}
		resp := &Message{Header: Header{
			ID: uint16(wire[0])<<8 | uint16(wire[1]), QR: true, RCode: dnswire.RCodeFormErr,
		}}
		out, err := Encode(resp)
		if err != nil {
			return nil
		}
		return out
	}
	if q.Header.Opcode == dnswire.OpcodeNotify && !q.Header.QR {
		if sub := rs.push.Load(); sub != nil {
			return sub.HandleNotifyWire(wire, from)
		}
	}
	name, qtype := q.Q().Name, q.Q().Type
	tap.ClientIn(from, name, qtype)
	var start time.Time
	if tap != nil {
		start = time.Now()
	}
	pres, err := rs.Client.resolveQuery(context.Background(),
		&middleware.Query{Name: name, Type: qtype, Client: from})
	if err != nil || pres == nil || pres.Result == nil {
		if tap != nil {
			tap.ResponseOut(from, name, qtype, RCodeServFail, 0, qlog.OutcomeError, time.Since(start))
		}
		resp := q.Reply()
		resp.Header.RCode = RCodeServFail
		resp.Header.RA = true
		out, _ := Encode(resp)
		return out
	}
	res := pres.Result
	if tap != nil {
		tap.ResponseOut(from, name, qtype, res.Msg.Header.RCode, res.AnswerTTL,
			pipelineOutcome(pres), time.Since(start))
	}
	if pres.Drop {
		// The rate limiter asked for silence: the client sees a timeout,
		// exactly what an attacker flooding a limited bucket deserves.
		return nil
	}
	msg := res.Msg
	msg.Header.ID = q.Header.ID
	msg.Header.RD = q.Header.RD
	out, err := dnswire.EncodeWithLimit(msg, dnswire.MaxEDNSSize)
	if err != nil {
		return nil
	}
	return out
}

// pipelineOutcome maps a pipeline response onto the qlog outcome
// taxonomy: middleware verdicts first (blocked, limited), then the
// resolution trace (coalesced, stale, hit, miss).
func pipelineOutcome(resp *middleware.Response) qlog.Outcome {
	switch resp.Verdict {
	case middleware.VerdictBlocked:
		return qlog.OutcomeBlocked
	case middleware.VerdictLimited:
		return qlog.OutcomeLimited
	case middleware.VerdictCached:
		return qlog.OutcomeHit
	}
	res := resp.Result
	switch {
	case res.Coalesced:
		return qlog.OutcomeCoalesced
	case res.Stale:
		return qlog.OutcomeStale
	case res.CacheHit:
		return qlog.OutcomeHit
	}
	return qlog.OutcomeMiss
}

// ListenUDP binds addr and serves client queries until Close.
func (rs *RecursiveServer) ListenUDP(addr string) (netip.AddrPort, error) {
	rs.u = &authoritative.UDPServer{Handler: transportHandler{rs, rs.QueryLog.Tap("udp")}}
	return rs.u.Listen(addr)
}

// ListenTCP binds addr for persistent-TCP clients (RFC 7766) until Close.
func (rs *RecursiveServer) ListenTCP(addr string) (netip.AddrPort, error) {
	rs.t = &authoritative.TCPServer{Handler: transportHandler{rs, rs.QueryLog.Tap("tcp")}}
	return rs.t.Listen(addr)
}

// ListenDoT binds addr for DNS-over-TLS clients (RFC 7858) until Close.
func (rs *RecursiveServer) ListenDoT(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	rs.dot = &authoritative.TCPServer{Handler: transportHandler{rs, rs.QueryLog.Tap("dot")}, TLS: cfg}
	return rs.dot.Listen(addr)
}

// ListenDoH binds addr for DNS-over-HTTPS clients (RFC 8484) until Close.
func (rs *RecursiveServer) ListenDoH(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	rs.doh = &authoritative.DoHServer{Handler: transportHandler{rs, rs.QueryLog.Tap("doh")}, TLS: cfg}
	return rs.doh.Listen(addr)
}

// Close stops every active listener.
func (rs *RecursiveServer) Close() error {
	var err error
	if rs.u != nil {
		err = rs.u.Close()
	}
	if rs.t != nil {
		if e := rs.t.Close(); err == nil {
			err = e
		}
	}
	if rs.dot != nil {
		if e := rs.dot.Close(); err == nil {
			err = e
		}
	}
	if rs.doh != nil {
		if e := rs.doh.Close(); err == nil {
			err = e
		}
	}
	return err
}
