package dnsttl

import (
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
)

// RecursiveServer fronts a Client with a UDP listener, turning the library
// into a runnable recursive resolver daemon (cmd/resolverd).
type RecursiveServer struct {
	Client *Client
	u      *authoritative.UDPServer
}

// ServeDNS answers one client query through the resolver: decode, resolve
// (cache first), re-stamp the client's transaction ID, encode.
func (rs *RecursiveServer) ServeDNS(wire []byte, from netip.Addr) []byte {
	q, err := dnswire.Decode(wire)
	if err != nil || len(q.Question) == 0 {
		if len(wire) < 12 {
			return nil
		}
		resp := &Message{Header: Header{
			ID: uint16(wire[0])<<8 | uint16(wire[1]), QR: true, RCode: dnswire.RCodeFormErr,
		}}
		out, err := Encode(resp)
		if err != nil {
			return nil
		}
		return out
	}
	res, err := rs.Client.Lookup(q.Q().Name, q.Q().Type)
	if err != nil || res == nil {
		resp := q.Reply()
		resp.Header.RCode = RCodeServFail
		resp.Header.RA = true
		out, _ := Encode(resp)
		return out
	}
	msg := res.Msg
	msg.Header.ID = q.Header.ID
	msg.Header.RD = q.Header.RD
	out, err := dnswire.EncodeWithLimit(msg, dnswire.MaxEDNSSize)
	if err != nil {
		return nil
	}
	return out
}

// ListenUDP binds addr and serves client queries until Close.
func (rs *RecursiveServer) ListenUDP(addr string) (netip.AddrPort, error) {
	rs.u = &authoritative.UDPServer{Handler: rs}
	return rs.u.Listen(addr)
}

// Close stops the listener.
func (rs *RecursiveServer) Close() error {
	if rs.u == nil {
		return nil
	}
	return rs.u.Close()
}
