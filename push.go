package dnsttl

import (
	"net"
	"net/netip"
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/push"
	"dnsttl/internal/resolver"
)

// PushAuthority is the authoritative half of the push-based invalidation
// plane: it versions zones into change feeds, fans NOTIFYs out to
// subscribers on every committed mutation, and serves the IXFR pulls those
// NOTIFYs trigger. Obtain one with Server.EnablePush.
type PushAuthority = push.Authority

// PushAuthorityStats snapshots a PushAuthority's counters.
type PushAuthorityStats = push.AuthorityStats

// PushSubscriber is the resolver half: it subscribes to zone change feeds,
// turns NOTIFYs into targeted cache purges (optionally purge+prefetch),
// falls back to SOA polling when the push channel goes quiet, and vetoes
// serve-stale for names it knows to be superseded. Obtain one with
// RecursiveServer.EnablePush, then call Subscribe per zone and drive it
// with Tick.
type PushSubscriber = push.Subscriber

// PushStats snapshots a PushSubscriber's counters.
type PushStats = push.Stats

// EnablePush publishes the given zones' change feeds through this server:
// mutating them (Add, Remove, Replace, SetTTL) bumps the zone serial,
// appends an IXFR-style delta to the feed history, and NOTIFYs every
// subscriber over UDP. Subscription requests and IXFR pulls arrive through
// the server's normal listeners. Call before mutating the zones.
func (s *Server) EnablePush(zones ...*Zone) (*PushAuthority, error) {
	a := push.NewAuthority()
	a.Send = sendNotifyUDP
	for _, z := range zones {
		f, err := push.NewFeed(z, 0)
		if err != nil {
			return nil, err
		}
		a.AddFeed(f)
	}
	s.s.Push = a
	return a, nil
}

// sendNotifyUDP fires one notify datagram and returns without waiting for
// the ack: RFC 1996's retry discipline is deliberately left to the
// subscriber's polling fallback, which bounds staleness even when every
// notify is lost.
func sendNotifyUDP(dst netip.AddrPort, wire []byte) error {
	c, err := net.Dial("udp", dst.String())
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Write(wire)
	return err
}

// PushConfig configures RecursiveServer.EnablePush.
type PushConfig struct {
	// Addr is the subscriber's own address — the source of its subscribe,
	// poll, and IXFR exchanges. Zero means 127.0.0.1.
	Addr netip.Addr
	// Port is the notify-back UDP port advertised when subscribing: the
	// port of the daemon's UDP listener, whose NOTIFY-opcode datagrams are
	// routed to the subscriber.
	Port uint16
	// Net carries the subscriber's exchanges; nil means real UDP on port 53.
	Net Exchanger
	// Clock drives polling, health, and purge timestamps; nil means wall.
	Clock Clock
	// Retry paces resubscribe attempts after failures.
	Retry RetryPolicy
	// PollEvery is the SOA polling fallback period (the staleness bound
	// accepted when the push channel drops every notify); 0 means 5 m.
	PollEvery time.Duration
	// HealthAfter is how long a subscription may go silent before it is
	// unhealthy and serve-stale is vetoed for the names it covers; 0 means
	// 2×PollEvery.
	HealthAfter time.Duration
	// Prefetch re-resolves purged names immediately, so the next client
	// query after an update is already a cache hit.
	Prefetch bool
	// Registry, when non-nil, mirrors the push.* counters.
	Registry *Registry
	// QueryLog, when non-nil, captures one notify-in record per NOTIFY.
	QueryLog *QueryLogTap
}

// EnablePush attaches a push subscriber to the daemon: NOTIFY-opcode
// datagrams arriving at any listener are routed to it, its purges apply to
// the client's cache(s) fleet-wide, and the client's serve-stale decisions
// consult its subscription health. Call Subscribe on the returned
// subscriber per upstream zone, and Tick it periodically (resubscribes and
// the polling fallback come due there).
func (rs *RecursiveServer) EnablePush(cfg PushConfig) *PushSubscriber {
	addr := cfg.Addr
	if !addr.IsValid() {
		addr = netip.MustParseAddr("127.0.0.1")
	}
	pnet := cfg.Net
	if pnet == nil {
		pnet = UDPNet{}
	}
	pcfg := push.Config{
		Addr:        addr,
		Port:        cfg.Port,
		Net:         pnet,
		Clock:       cfg.Clock,
		Retry:       cfg.Retry,
		Stores:      rs.Client.stores(),
		PollEvery:   cfg.PollEvery,
		HealthAfter: cfg.HealthAfter,
		QLog:        cfg.QueryLog,
	}
	if cfg.Registry != nil {
		pcfg.Metrics = push.NewMetrics(cfg.Registry)
	}
	if cfg.Prefetch {
		pcfg.Refetch = func(name Name, qtype Type) {
			_, _ = rs.Client.Lookup(name, qtype)
		}
	}
	sub := push.NewSubscriber(pcfg)
	rs.Client.setStaleGate(sub)
	rs.push.Store(sub)
	return sub
}

// stores returns the client's cache stores — one per farm frontend for
// private topologies, a single store otherwise — the set a push subscriber
// must purge through to invalidate the whole fleet.
func (c *Client) stores() []cache.Store {
	if c.f != nil {
		return c.f.Stores()
	}
	return []cache.Store{c.r.Cache}
}

// setStaleGate installs g on every frontend (or the lone resolver).
func (c *Client) setStaleGate(g resolver.StaleGate) {
	if c.f != nil {
		c.f.SetStaleGate(g)
		return
	}
	c.r.StaleGate = g
}
