package dnsttl

import (
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/entrada"
	"dnsttl/internal/qlog"
)

// TestQueryLogEndToEnd closes the observability loop over real sockets: an
// authoritative server and a recursive daemon both capture into one
// structured query log while a stub client drives traffic, then the log is
// read back, fed through entrada, and the hit rate it implies is checked
// against the resolver's own cache counters — the same agreement the
// qlog_smoke.sh CI job asserts against live daemons.
func TestQueryLogEndToEnd(t *testing.T) {
	auth := NewServer(NewName("a.root-servers.net"), nil)
	for origin, text := range map[string]string{".": rootZoneText, "example.org": orgZoneText} {
		z, err := ParseZone(text, NewName(origin))
		if err != nil {
			t.Fatal(err)
		}
		auth.AddZone(z)
	}
	logPath := filepath.Join(t.TempDir(), "e2e.qlog")
	reg := NewRegistry(nil)
	qlogger, err := NewQueryLog(QueryLogConfig{Path: logPath, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	auth.AttachQueryLog(qlogger.Tap("auth-udp"))
	authAddr, err := auth.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer auth.Close()

	client, err := NewClient(ClientConfig{
		Roots:    []netip.Addr{authAddr.Addr()},
		Net:      UDPNet{Port: authAddr.Port(), Timeout: 2 * time.Second},
		Registry: reg,
		QueryLog: qlogger.Tap("udp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := &RecursiveServer{Client: client, QueryLog: qlogger}
	rdAddr, err := rd.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	const total = 1000
	q := dnswire.NewQuery(0x5151, NewName("www.example.org"), TypeA)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, _, err := authoritative.UDPExchange(rdAddr, wire, 2*time.Second); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	cacheStats := client.CacheStats()
	if err := qlogger.Close(); err != nil {
		t.Fatal(err)
	}

	recs, decodeErrs, err := ReadQueryLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if decodeErrs != 0 {
		t.Fatalf("decode errors = %d, want 0", decodeErrs)
	}

	// Every capture point must be present: client-in and response-out from
	// the daemon, upstream from the resolver, response-out from the
	// authoritative tap.
	w := entrada.NewWarehouse()
	points := map[qlog.Point]int{}
	transports := map[string]int{}
	var hits, answered int
	for i := range recs {
		r := &recs[i]
		points[r.Point]++
		transports[r.Transport]++
		if r.Point != qlog.PointResponseOut || r.Transport != "udp" {
			continue
		}
		switch r.Outcome {
		case qlog.OutcomeHit:
			hits++
			answered++
		case qlog.OutcomeMiss, qlog.OutcomeStale, qlog.OutcomeCoalesced:
			answered++
		}
		w.Ingest(entrada.Row{Time: time.Unix(0, r.Time), Resolver: r.Client, Name: r.Name, Type: r.Type})
	}
	if points[qlog.PointClientIn] != total {
		t.Errorf("client-in records = %d, want %d", points[qlog.PointClientIn], total)
	}
	if points[qlog.PointResponseOut] < total {
		t.Errorf("response-out records = %d, want >= %d", points[qlog.PointResponseOut], total)
	}
	if points[qlog.PointUpstream] == 0 {
		t.Error("no upstream records captured")
	}
	if transports["auth-udp"] == 0 {
		t.Error("no authoritative-side records captured")
	}

	// The log's hit rate must agree with the resolver's cache counters to
	// within one point (the counters also see infrastructure lookups).
	if answered != total {
		t.Fatalf("answered response-out records = %d, want %d", answered, total)
	}
	logRate := float64(hits) / float64(answered)
	cacheRate := float64(cacheStats.Hits) / float64(cacheStats.Hits+cacheStats.Misses)
	if diff := logRate - cacheRate; diff > 0.01 || diff < -0.01 {
		t.Errorf("hit rate from log %.4f vs cache counters %.4f: differ by more than one point", logRate, cacheRate)
	}

	// Entrada over the daemon's response-out records sees one (resolver,
	// qname) group holding every query.
	census := w.CentricityCensus()
	if census.Groups != 1 || census.UniqueResolvers != 1 {
		t.Errorf("census = %+v, want 1 group / 1 resolver", census)
	}
	if s := w.QueryCountSample(0); s.Len() != 1 || s.Quantile(0.5) != total {
		t.Errorf("queries per group = %v, want [%d]", s, total)
	}

	// The registry mirrored the pipeline accounting.
	snap := reg.Snapshot()
	if got := snap.Counters[qlog.MetricRecords]; got < uint64(len(recs)) {
		t.Errorf("%s = %d, want >= %d (records on disk)", qlog.MetricRecords, got, len(recs))
	}
	if got := snap.Counters[qlog.MetricWriteErrors]; got != 0 {
		t.Errorf("%s = %d, want 0", qlog.MetricWriteErrors, got)
	}
}
