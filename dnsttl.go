// Package dnsttl is a library-scale reproduction of "Cache Me If You Can:
// Effects of DNS Time-to-Live" (Moura, Heidemann, Schmidt, Hardaker —
// IMC 2019). It bundles:
//
//   - a full DNS substrate built from scratch on the standard library:
//     wire codec, zones, authoritative server, iterative caching resolver
//     with the behavioral families the paper measures (child/parent
//     centricity, NS/A lifetime coupling, TTL caps, stickiness, RFC 7706
//     local root, serve-stale);
//   - a simulated measurement platform (virtual clock, regional latency,
//     anycast, a RIPE-Atlas-style vantage-point fleet, an ENTRADA-style
//     passive warehouse, list crawler and content classifier);
//   - drivers that regenerate every table and figure of the paper's
//     evaluation (see RunExperiment and the repository's EXPERIMENTS.md);
//   - an operator-facing effective-TTL model and recommendation engine
//     distilling the paper's §6 guidance.
//
// The package root re-exports the pieces a downstream user needs; the
// implementation lives under internal/.
package dnsttl

import (
	"dnsttl/internal/cache"
	"dnsttl/internal/core"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Wire-format essentials.
type (
	// Name is a canonicalized fully-qualified domain name.
	Name = dnswire.Name
	// Type is an RR type code.
	Type = dnswire.Type
	// RR is one resource record.
	RR = dnswire.RR
	// Message is a DNS message.
	Message = dnswire.Message
	// Header is the DNS message header.
	Header = dnswire.Header
	// Question is a query tuple.
	Question = dnswire.Question
	// RCode is a response code.
	RCode = dnswire.RCode
)

// Common RR types and rcodes.
const (
	TypeA      = dnswire.TypeA
	TypeAAAA   = dnswire.TypeAAAA
	TypeNS     = dnswire.TypeNS
	TypeCNAME  = dnswire.TypeCNAME
	TypeSOA    = dnswire.TypeSOA
	TypeMX     = dnswire.TypeMX
	TypeTXT    = dnswire.TypeTXT
	TypeDNSKEY = dnswire.TypeDNSKEY

	RCodeNoError  = dnswire.RCodeNoError
	RCodeNXDomain = dnswire.RCodeNXDomain
	RCodeServFail = dnswire.RCodeServFail
)

// NewName canonicalizes a domain name.
func NewName(s string) Name { return dnswire.NewName(s) }

// Encode serializes a message to wire format.
func Encode(m *Message) ([]byte, error) { return dnswire.Encode(m) }

// Decode parses a wire-format message.
func Decode(wire []byte) (*Message, error) { return dnswire.Decode(wire) }

// AppendEncode serializes a message, appending to dst; with a dst of
// sufficient capacity the encode is allocation-free.
func AppendEncode(dst []byte, m *Message) ([]byte, error) { return dnswire.AppendEncode(dst, m) }

// Decoder is a reusable wire-format decoder that fills caller-owned
// Messages without allocating in steady state.
type Decoder = dnswire.Decoder

// NewDecoder returns a ready Decoder.
func NewDecoder() *Decoder { return dnswire.NewDecoder() }

// Zone model.
type (
	// Zone is a zone of authority.
	Zone = zone.Zone
	// BailiwickClass classifies a domain's nameserver-host configuration.
	BailiwickClass = zone.BailiwickClass
)

// Bailiwick classes.
const (
	BailiwickInOnly  = zone.BailiwickInOnly
	BailiwickOutOnly = zone.BailiwickOutOnly
	BailiwickMixed   = zone.BailiwickMixed
)

// NewZone creates an empty zone rooted at origin.
func NewZone(origin Name) *Zone { return zone.New(origin) }

// Resolver behavior.
type (
	// Policy configures a resolver's behavioral family.
	Policy = resolver.Policy
	// Centricity selects parent- vs child-centric TTL preference.
	Centricity = resolver.Centricity
	// Credibility ranks cached data per RFC 2181 §5.4.1.
	Credibility = cache.Credibility
	// RetryPolicy configures the resolver's failure handling: attempts,
	// exponential backoff with deterministic jitter, per-attempt and overall
	// deadlines, hedged queries, and SRTT-based server ordering. The zero
	// value preserves legacy single-shot semantics.
	RetryPolicy = resolver.RetryPolicy
)

// Centricities.
const (
	ChildCentric  = resolver.ChildCentric
	ParentCentric = resolver.ParentCentric
)

// DefaultPolicy is a mainstream child-centric resolver configuration.
func DefaultPolicy() Policy { return resolver.DefaultPolicy() }

// Clocks.
type (
	// Clock abstracts time for TTL decay.
	Clock = simnet.Clock
	// VirtualClock is a manually advanced clock for simulations.
	VirtualClock = simnet.VirtualClock
)

// NewVirtualClock returns a virtual clock at the simulation epoch.
func NewVirtualClock() *VirtualClock { return simnet.NewVirtualClock() }

// Fault injection (the chaos plane).
type (
	// Fault is one scripted fault window (outage, loss burst, latency
	// spike, SERVFAIL storm, truncation, flapping).
	Fault = simnet.Fault
	// FaultSchedule is a deterministic, clock-driven script of fault
	// windows, installable on a simnet.Network's Faults field.
	FaultSchedule = simnet.FaultSchedule
)

// NewFaultSchedule builds a schedule from fault windows.
func NewFaultSchedule(faults ...Fault) *FaultSchedule { return simnet.NewFaultSchedule(faults...) }

// ParseFaultSchedule parses the textual schedule grammar, e.g.
// "outage:192.88.0.7:1200s+2400s;loss:*:0s+600s:0.5". See the simnet
// package for the full grammar.
func ParseFaultSchedule(spec string) (*FaultSchedule, error) {
	return simnet.ParseFaultSchedule(spec)
}

// Operator guidance (the paper's §6, as a library).
type (
	// ZoneConfig is a domain's TTL configuration.
	ZoneConfig = core.ZoneConfig
	// PopulationModel is the resolver-behavior mix.
	PopulationModel = core.PopulationModel
	// Scenario captures the operational factors of §6.1.
	Scenario = core.Scenario
	// Recommendation is one advisor finding.
	Recommendation = core.Recommendation
	// Distribution is a set of effective-TTL outcomes.
	Distribution = core.Distribution
	// Workload describes client demand for estimates.
	Workload = core.Workload
	// Estimates summarizes expected hit rate, latency and load.
	Estimates = core.Estimates
)

// MeasuredPopulation returns the resolver mix the paper measured: 90 %
// child-centric, 10 % parent-centric, 15 % capping at 21599 s.
func MeasuredPopulation() PopulationModel { return core.MeasuredPopulation() }

// EffectiveNSTTL computes which NS TTLs the population will honor.
func EffectiveNSTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	return core.EffectiveNSTTL(cfg, pop)
}

// EffectiveAddrTTL computes the nameserver-address cache lifetimes,
// including the §4 in-bailiwick NS/A coupling.
func EffectiveAddrTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	return core.EffectiveAddrTTL(cfg, pop)
}

// EffectiveServiceTTL computes the service-record lifetimes.
func EffectiveServiceTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	return core.EffectiveServiceTTL(cfg, pop)
}

// HitRate is the Jung et al. TTL-cache model: λT/(1+λT).
func HitRate(ttl uint32, lambda float64) float64 { return core.HitRate(ttl, lambda) }

// Estimate computes expected hit rate, latency and authoritative load.
func Estimate(d Distribution, w Workload) Estimates { return core.Estimate(d, w) }

// DefaultWorkload is a moderately popular name at one resolver.
func DefaultWorkload() Workload { return core.DefaultWorkload() }

// Advise runs the §6 recommendation rules over a configuration.
func Advise(cfg ZoneConfig, sc Scenario) []Recommendation { return core.Advise(cfg, sc) }
